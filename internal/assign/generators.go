package assign

// The package-level generators are one-shot conveniences over Builder; each
// draws exactly the same random stream as the corresponding Builder method,
// so a cached Builder in a trial arena and a fresh call here produce
// byte-identical assignments.

// FullOverlap returns the assignment in which all n nodes share the same c
// channels (so C = c and k = c). This is the classic multi-channel network
// and the substrate for the jamming reduction of Theorem 18.
func FullOverlap(n, c int, model LabelModel, seed int64) (*Static, error) {
	return new(Builder).FullOverlap(n, c, model, seed)
}

// Partitioned returns the construction used in the proof of Theorem 16:
// C = k + n·(c−k) channels, of which k are shared by every node while the
// remaining n·(c−k) are split into n disjoint private blocks of size c−k,
// one per node. Every pair overlaps on exactly k channels. Physical channel
// identities are randomly permuted so that the shared core occupies no
// recognizable positions.
func Partitioned(n, c, k int, model LabelModel, seed int64) (*Static, error) {
	return new(Builder).Partitioned(n, c, k, model, seed)
}

// SharedCore returns an assignment over C channels in which k randomly
// chosen channels form a core held by every node, and each node fills the
// remaining c−k slots with distinct channels drawn uniformly from the other
// C−k. Pairwise overlap is at least k (the core) and typically larger,
// making it the "generic" topology for upper-bound experiments. Requires
// C >= c.
func SharedCore(n, c, k, totalChannels int, model LabelModel, seed int64) (*Static, error) {
	return new(Builder).SharedCore(n, c, k, totalChannels, model, seed)
}

// PairwiseDedicated returns the other extreme the paper's Claim 2 analysis
// distinguishes: every unordered pair of nodes shares k channels dedicated
// to that pair alone, so overlaps are maximally spread out instead of
// concentrated. Each node holds k·(n−1) pair channels plus c − k·(n−1)
// private ones; requires c >= k·(n−1).
func PairwiseDedicated(n, c, k int, model LabelModel, seed int64) (*Static, error) {
	return new(Builder).PairwiseDedicated(n, c, k, model, seed)
}

// maxRandomPoolTries bounds the rejection sampling in RandomPool.
const maxRandomPoolTries = 64

// RandomPool draws every node's channel set uniformly at random (without
// replacement) from C channels and rejects draws in which some pair overlaps
// on fewer than k channels. It errors if no valid draw is found within a
// bounded number of attempts — callers should pick parameters for which the
// expected overlap c²/C comfortably exceeds k.
func RandomPool(n, c, k, totalChannels int, model LabelModel, seed int64) (*Static, error) {
	return new(Builder).RandomPool(n, c, k, totalChannels, model, seed)
}
