package assign

import (
	"fmt"

	"github.com/cogradio/crn/internal/rng"
)

// FullOverlap returns the assignment in which all n nodes share the same c
// channels (so C = c and k = c). This is the classic multi-channel network
// and the substrate for the jamming reduction of Theorem 18.
func FullOverlap(n, c int, model LabelModel, seed int64) (*Static, error) {
	if err := checkCommon(n, c, c, model); err != nil {
		return nil, err
	}
	sets := make([][]int, n)
	for u := range sets {
		set := make([]int, c)
		for i := range set {
			set[i] = i
		}
		sets[u] = set
	}
	if err := applyLabels(sets, model, seed); err != nil {
		return nil, err
	}
	return &Static{channels: c, perNode: c, minOverlap: c, sets: sets}, nil
}

// Partitioned returns the construction used in the proof of Theorem 16:
// C = k + n·(c−k) channels, of which k are shared by every node while the
// remaining n·(c−k) are split into n disjoint private blocks of size c−k,
// one per node. Every pair overlaps on exactly k channels. Physical channel
// identities are randomly permuted so that the shared core occupies no
// recognizable positions.
func Partitioned(n, c, k int, model LabelModel, seed int64) (*Static, error) {
	if err := checkCommon(n, c, k, model); err != nil {
		return nil, err
	}
	total := k + n*(c-k)
	perm := randomPerm(total, rng.New(seed, 0x9a27))
	core := perm[:k]
	sets := make([][]int, n)
	next := k
	for u := range sets {
		set := make([]int, 0, c)
		set = append(set, core...)
		set = append(set, perm[next:next+(c-k)]...)
		next += c - k
		sets[u] = set
	}
	if err := applyLabels(sets, model, seed); err != nil {
		return nil, err
	}
	return &Static{channels: total, perNode: c, minOverlap: k, sets: sets}, nil
}

// SharedCore returns an assignment over C channels in which k randomly
// chosen channels form a core held by every node, and each node fills the
// remaining c−k slots with distinct channels drawn uniformly from the other
// C−k. Pairwise overlap is at least k (the core) and typically larger,
// making it the "generic" topology for upper-bound experiments. Requires
// C >= c.
func SharedCore(n, c, k, totalChannels int, model LabelModel, seed int64) (*Static, error) {
	if err := checkCommon(n, c, k, model); err != nil {
		return nil, err
	}
	if totalChannels < c {
		return nil, fmt.Errorf("assign: C=%d must be at least c=%d", totalChannels, c)
	}
	perm := randomPerm(totalChannels, rng.New(seed, 0x5c0))
	core := perm[:k]
	pool := perm[k:]
	sets := make([][]int, n)
	for u := range sets {
		r := rng.New(seed, int64(u), 0x5c1)
		set := make([]int, 0, c)
		set = append(set, core...)
		set = append(set, sampleWithout(pool, c-k, r)...)
		sets[u] = set
	}
	if err := applyLabels(sets, model, seed); err != nil {
		return nil, err
	}
	return &Static{channels: totalChannels, perNode: c, minOverlap: k, sets: sets}, nil
}

// PairwiseDedicated returns the other extreme the paper's Claim 2 analysis
// distinguishes: every unordered pair of nodes shares k channels dedicated
// to that pair alone, so overlaps are maximally spread out instead of
// concentrated. Each node holds k·(n−1) pair channels plus c − k·(n−1)
// private ones; requires c >= k·(n−1).
func PairwiseDedicated(n, c, k int, model LabelModel, seed int64) (*Static, error) {
	if err := checkCommon(n, c, k, model); err != nil {
		return nil, err
	}
	if need := k * (n - 1); c < need {
		return nil, fmt.Errorf("assign: pairwise-dedicated needs c >= k(n-1) = %d, got c=%d", need, c)
	}
	private := c - k*(n-1)
	total := k*n*(n-1)/2 + n*private
	perm := randomPerm(total, rng.New(seed, 0x9a1e))
	next := 0
	take := func(m int) []int {
		s := perm[next : next+m]
		next += m
		return s
	}
	sets := make([][]int, n)
	for u := range sets {
		sets[u] = make([]int, 0, c)
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			pair := take(k)
			sets[u] = append(sets[u], pair...)
			sets[v] = append(sets[v], pair...)
		}
	}
	for u := 0; u < n; u++ {
		sets[u] = append(sets[u], take(private)...)
	}
	if err := applyLabels(sets, model, seed); err != nil {
		return nil, err
	}
	return &Static{channels: total, perNode: c, minOverlap: k, sets: sets}, nil
}

// maxRandomPoolTries bounds the rejection sampling in RandomPool.
const maxRandomPoolTries = 64

// RandomPool draws every node's channel set uniformly at random (without
// replacement) from C channels and rejects draws in which some pair overlaps
// on fewer than k channels. It errors if no valid draw is found within a
// bounded number of attempts — callers should pick parameters for which the
// expected overlap c²/C comfortably exceeds k.
func RandomPool(n, c, k, totalChannels int, model LabelModel, seed int64) (*Static, error) {
	if err := checkCommon(n, c, k, model); err != nil {
		return nil, err
	}
	if totalChannels < c {
		return nil, fmt.Errorf("assign: C=%d must be at least c=%d", totalChannels, c)
	}
	all := make([]int, totalChannels)
	for i := range all {
		all[i] = i
	}
	for try := 0; try < maxRandomPoolTries; try++ {
		sets := make([][]int, n)
		for u := range sets {
			r := rng.New(seed, int64(try), int64(u), 0x4a11)
			sets[u] = sampleWithout(all, c, r)
		}
		s := &Static{channels: totalChannels, perNode: c, minOverlap: k, sets: sets}
		if s.Validate() == nil {
			if err := applyLabels(sets, model, seed); err != nil {
				return nil, err
			}
			return s, nil
		}
	}
	return nil, fmt.Errorf("assign: no uniform draw with pairwise overlap >= %d found in %d tries (n=%d c=%d C=%d); expected overlap is c²/C = %.1f",
		k, maxRandomPoolTries, n, c, totalChannels, float64(c*c)/float64(totalChannels))
}

// randomPerm returns a random permutation of 0..n-1 using r.
func randomPerm(n int, r interface{ Perm(int) []int }) []int {
	return r.Perm(n)
}

// sampleWithout returns m distinct elements of pool chosen uniformly,
// without mutating pool.
func sampleWithout(pool []int, m int, r interface{ Perm(int) []int }) []int {
	if m == 0 {
		return nil
	}
	idx := r.Perm(len(pool))[:m]
	out := make([]int, m)
	for i, j := range idx {
		out[i] = pool[j]
	}
	return out
}
