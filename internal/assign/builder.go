package assign

import (
	"fmt"
	"math/rand"

	"github.com/cogradio/crn/internal/rng"
)

// Builder regenerates static assignments in place. Each build writes the new
// assignment into the builder's flat backing array (one []int of length n·c,
// with per-node sets as subslices) and re-seeds one reusable generator for
// every random draw, so a warm builder constructs assignments without
// allocating. The random draws are exactly those of the package-level
// generator functions — a built assignment is byte-identical to a fresh one
// for the same parameters and seed — which is what lets trial arenas reuse a
// Builder without perturbing experiment output.
//
// The returned *Static aliases builder-owned memory: it is valid until the
// next build on the same Builder. A Builder must not be shared across
// goroutines; trial runners keep one per worker.
type Builder struct {
	s    Static
	r    *rand.Rand
	perm []int // randomPerm scratch
	samp []int // appendSample scratch (distinct: pools alias perm)
}

// reuse shapes the builder's Static for n nodes holding c of totalChannels
// channels with overlap k. Every per-node set comes back empty (length 0,
// capacity c) as a subslice of the flat backing array, ready for appends.
func (b *Builder) reuse(n, c, totalChannels, k int) *Static {
	s := &b.s
	s.channels, s.perNode, s.minOverlap = totalChannels, c, k
	s.maxChanKnown = false
	s.index = nil
	need := n * c
	if cap(s.backing) < need {
		s.backing = make([]int, need)
	}
	s.backing = s.backing[:need]
	if cap(s.sets) < n {
		s.sets = make([][]int, n)
	}
	s.sets = s.sets[:n]
	for u := range s.sets {
		s.sets[u] = s.backing[u*c : u*c : (u+1)*c]
	}
	return s
}

// rand returns the builder's generator re-seeded to the stream of
// rng.New(seed, ids...).
func (b *Builder) rand(seed int64, ids ...int64) *rand.Rand {
	if b.r == nil {
		b.r = rng.New(seed, ids...)
	} else {
		rng.Reseed(b.r, seed, ids...)
	}
	return b.r
}

// randomPerm returns a permutation of 0..n-1 drawn from the (seed, ids...)
// stream, in the builder's reusable scratch.
func (b *Builder) randomPerm(n int, seed int64, ids ...int64) []int {
	b.perm = rng.PermInto(b.rand(seed, ids...), b.perm, n)
	return b.perm
}

// appendSample appends m distinct elements of pool, chosen uniformly by r,
// to dst. Draw-for-draw it matches the historical sampleWithout (a full
// permutation of the pool, first m positions taken).
func (b *Builder) appendSample(dst, pool []int, m int, r *rand.Rand) []int {
	if m == 0 {
		return dst
	}
	b.samp = rng.PermInto(r, b.samp, len(pool))
	for _, j := range b.samp[:m] {
		dst = append(dst, pool[j])
	}
	return dst
}

// applyLabels orders each node's set according to the label model. Sets
// arrive from generators in construction order; GlobalLabels sorts them by
// physical index, LocalLabels shuffles each with a node-specific stream.
func (b *Builder) applyLabels(sets [][]int, model LabelModel, seed int64) error {
	switch model {
	case GlobalLabels:
		for _, set := range sets {
			insertionSort(set)
		}
	case LocalLabels:
		for u, set := range sets {
			r := b.rand(seed, int64(u), 0x1ab)
			r.Shuffle(len(set), func(i, j int) { set[i], set[j] = set[j], set[i] })
		}
	default:
		return fmt.Errorf("assign: invalid label model %d", model)
	}
	return nil
}

// finish applies labels, records the maximum physical index (labels only
// permute sets, so the scan can run either side of labeling) and hands the
// assignment out.
func (b *Builder) finish(s *Static, model LabelModel, seed int64) (*Static, error) {
	if err := b.applyLabels(s.sets, model, seed); err != nil {
		return nil, err
	}
	m := -1
	for _, ch := range s.backing {
		if ch > m {
			m = ch
		}
	}
	s.maxChan = m
	s.maxChanKnown = true
	return s, nil
}

// FullOverlap regenerates the FullOverlap assignment into the builder's
// backing arrays.
func (b *Builder) FullOverlap(n, c int, model LabelModel, seed int64) (*Static, error) {
	if err := checkCommon(n, c, c, model); err != nil {
		return nil, err
	}
	s := b.reuse(n, c, c, c)
	for u := range s.sets {
		set := s.sets[u]
		for i := 0; i < c; i++ {
			set = append(set, i)
		}
		s.sets[u] = set
	}
	return b.finish(s, model, seed)
}

// Partitioned regenerates the Partitioned assignment into the builder's
// backing arrays.
func (b *Builder) Partitioned(n, c, k int, model LabelModel, seed int64) (*Static, error) {
	if err := checkCommon(n, c, k, model); err != nil {
		return nil, err
	}
	total := k + n*(c-k)
	perm := b.randomPerm(total, seed, 0x9a27)
	s := b.reuse(n, c, total, k)
	core := perm[:k]
	next := k
	for u := range s.sets {
		set := append(s.sets[u], core...)
		set = append(set, perm[next:next+(c-k)]...)
		next += c - k
		s.sets[u] = set
	}
	return b.finish(s, model, seed)
}

// SharedCore regenerates the SharedCore assignment into the builder's
// backing arrays.
func (b *Builder) SharedCore(n, c, k, totalChannels int, model LabelModel, seed int64) (*Static, error) {
	if err := checkCommon(n, c, k, model); err != nil {
		return nil, err
	}
	if totalChannels < c {
		return nil, fmt.Errorf("assign: C=%d must be at least c=%d", totalChannels, c)
	}
	perm := b.randomPerm(totalChannels, seed, 0x5c0)
	core := perm[:k]
	pool := perm[k:]
	s := b.reuse(n, c, totalChannels, k)
	for u := range s.sets {
		r := b.rand(seed, int64(u), 0x5c1)
		set := append(s.sets[u], core...)
		s.sets[u] = b.appendSample(set, pool, c-k, r)
	}
	return b.finish(s, model, seed)
}

// PairwiseDedicated regenerates the PairwiseDedicated assignment into the
// builder's backing arrays.
func (b *Builder) PairwiseDedicated(n, c, k int, model LabelModel, seed int64) (*Static, error) {
	if err := checkCommon(n, c, k, model); err != nil {
		return nil, err
	}
	if need := k * (n - 1); c < need {
		return nil, fmt.Errorf("assign: pairwise-dedicated needs c >= k(n-1) = %d, got c=%d", need, c)
	}
	private := c - k*(n-1)
	total := k*n*(n-1)/2 + n*private
	perm := b.randomPerm(total, seed, 0x9a1e)
	s := b.reuse(n, c, total, k)
	next := 0
	take := func(m int) []int {
		t := perm[next : next+m]
		next += m
		return t
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			pair := take(k)
			s.sets[u] = append(s.sets[u], pair...)
			s.sets[v] = append(s.sets[v], pair...)
		}
	}
	for u := 0; u < n; u++ {
		s.sets[u] = append(s.sets[u], take(private)...)
	}
	return b.finish(s, model, seed)
}

// RandomPool regenerates the RandomPool assignment into the builder's
// backing arrays.
func (b *Builder) RandomPool(n, c, k, totalChannels int, model LabelModel, seed int64) (*Static, error) {
	if err := checkCommon(n, c, k, model); err != nil {
		return nil, err
	}
	if totalChannels < c {
		return nil, fmt.Errorf("assign: C=%d must be at least c=%d", totalChannels, c)
	}
	for try := 0; try < maxRandomPoolTries; try++ {
		s := b.reuse(n, c, totalChannels, k)
		for u := range s.sets {
			// The historical draw is a full permutation of an identity pool,
			// of which the first c entries become the set.
			r := b.rand(seed, int64(try), int64(u), 0x4a11)
			b.samp = rng.PermInto(r, b.samp, totalChannels)
			s.sets[u] = append(s.sets[u], b.samp[:c]...)
		}
		if s.Validate() == nil {
			return b.finish(s, model, seed)
		}
	}
	return nil, fmt.Errorf("assign: no uniform draw with pairwise overlap >= %d found in %d tries (n=%d c=%d C=%d); expected overlap is c²/C = %.1f",
		k, maxRandomPoolTries, n, c, totalChannels, float64(c*c)/float64(totalChannels))
}

// TwoSet regenerates the TwoSet assignment into the builder's backing
// arrays.
func (b *Builder) TwoSet(n, c, k int, model LabelModel, seed int64) (*Static, error) {
	if err := checkCommon(n, c, k, model); err != nil {
		return nil, err
	}
	if n < 2 {
		return nil, fmt.Errorf("assign: two-set network needs n >= 2, got %d", n)
	}
	total := 2*c - k
	perm := b.randomPerm(total, seed, 0x25e7)
	s := b.reuse(n, c, total, k)
	shared := perm[:k]
	aPriv := perm[k:c]
	bPriv := perm[c:]
	s.sets[0] = append(append(s.sets[0], shared...), aPriv...)
	for u := 1; u < n; u++ {
		s.sets[u] = append(append(s.sets[u], shared...), bPriv...)
	}
	return b.finish(s, model, seed)
}
