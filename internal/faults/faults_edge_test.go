package faults_test

import (
	"testing"

	"github.com/cogradio/crn/internal/assign"
	"github.com/cogradio/crn/internal/cogcast"
	"github.com/cogradio/crn/internal/faults"
	"github.com/cogradio/crn/internal/sim"
)

func TestCorrelatedOutagesValidation(t *testing.T) {
	if _, err := faults.NewCorrelatedOutages(1.0, 5, 4, 1); err == nil {
		t.Error("p=1 accepted")
	}
	if _, err := faults.NewCorrelatedOutages(-0.1, 5, 4, 1); err == nil {
		t.Error("negative p accepted")
	}
	if _, err := faults.NewCorrelatedOutages(0.1, 0, 4, 1); err == nil {
		t.Error("zero duration accepted")
	}
	if _, err := faults.NewCorrelatedOutages(0.1, 5, 0, 1); err == nil {
		t.Error("zero group size accepted")
	}
	s, err := faults.NewCorrelatedOutages(0.1, 5, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "correlated-outages" {
		t.Errorf("Name = %q", s.Name())
	}
}

func TestCorrelatedOutagesGroupsFailTogether(t *testing.T) {
	const groupSize = 4
	s, err := faults.NewCorrelatedOutages(0.05, 6, groupSize, 42)
	if err != nil {
		t.Fatal(err)
	}
	sawDown := false
	for slot := 0; slot < 500; slot++ {
		for group := sim.NodeID(0); group < 4; group++ {
			first := group * groupSize
			up := s.Up(first, slot)
			if !up {
				sawDown = true
			}
			for member := first + 1; member < first+groupSize; member++ {
				if s.Up(member, slot) != up {
					t.Fatalf("slot %d: node %d disagrees with group-mate %d", slot, member, first)
				}
			}
		}
	}
	if !sawDown {
		t.Error("no outage in 500 slots at p=0.05; schedule looks inert")
	}
}

func TestCorrelatedOutagesIndependentGroups(t *testing.T) {
	// Different groups must not be lockstep copies of each other.
	s, err := faults.NewCorrelatedOutages(0.05, 6, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	differs := false
	for slot := 0; slot < 1000 && !differs; slot++ {
		if s.Up(0, slot) != s.Up(2, slot) {
			differs = true
		}
	}
	if !differs {
		t.Error("groups 0 and 1 share an identical outage pattern over 1000 slots")
	}
}

func TestCorrelatedOutagesDeterministic(t *testing.T) {
	a, _ := faults.NewCorrelatedOutages(0.1, 4, 3, 99)
	b, _ := faults.NewCorrelatedOutages(0.1, 4, 3, 99)
	for slot := 0; slot < 200; slot++ {
		for node := sim.NodeID(0); node < 9; node++ {
			if a.Up(node, slot) != b.Up(node, slot) {
				t.Fatalf("slot %d node %d: same (seed, slot) gave different answers", slot, node)
			}
		}
	}
}

func TestCorrelatedOutagesProtection(t *testing.T) {
	s, err := faults.NewCorrelatedOutages(0.9, 3, 4, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	for slot := 0; slot < 100; slot++ {
		if !s.Up(1, slot) {
			t.Fatalf("protected node 1 down at slot %d despite its group failing", slot)
		}
	}
}

func TestBlackoutDurationZero(t *testing.T) {
	// An empty interval [5, 5) is valid and never takes anyone down.
	b, err := faults.NewBlackout(5, 5, 0, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	for slot := 0; slot < 20; slot++ {
		for node := sim.NodeID(0); node < 3; node++ {
			if !b.Up(node, slot) {
				t.Fatalf("zero-length blackout took node %d down at slot %d", node, slot)
			}
		}
	}
}

func TestRandomOutagesEmptyProtectList(t *testing.T) {
	// No protect argument at all: every node is eligible to fail.
	s, err := faults.NewRandomOutages(0.9, 2, 13)
	if err != nil {
		t.Fatal(err)
	}
	for node := sim.NodeID(0); node < 4; node++ {
		down := false
		for slot := 0; slot < 100; slot++ {
			if !s.Up(node, slot) {
				down = true
				break
			}
		}
		if !down {
			t.Errorf("node %d never failed at p=0.9 with an empty protect list", node)
		}
	}
}

func TestAllNodesProtectedEqualsAlwaysUp(t *testing.T) {
	const n = 8
	ids := make([]sim.NodeID, n)
	for i := range ids {
		ids[i] = sim.NodeID(i)
	}
	ro, err := faults.NewRandomOutages(0.99, 5, 17, ids...)
	if err != nil {
		t.Fatal(err)
	}
	co, err := faults.NewCorrelatedOutages(0.99, 5, 2, 17, ids...)
	if err != nil {
		t.Fatal(err)
	}
	up := faults.AlwaysUp{}
	for slot := 0; slot < 300; slot++ {
		for _, id := range ids {
			if ro.Up(id, slot) != up.Up(id, slot) {
				t.Fatalf("all-protected RandomOutages differs from AlwaysUp at node %d slot %d", id, slot)
			}
			if co.Up(id, slot) != up.Up(id, slot) {
				t.Fatalf("all-protected CorrelatedOutages differs from AlwaysUp at node %d slot %d", id, slot)
			}
		}
	}
}

func TestCrasherUnderDynamicAssignments(t *testing.T) {
	// COGCAST tolerates dynamic channel assignments (Theorem 17) and the
	// Crasher must not disturb that: a blackout over a dynamic assignment
	// still completes once the nodes come back.
	const n, c, k = 16, 6, 3
	asn, err := assign.NewDynamic(n, c, k, 10, 11)
	if err != nil {
		t.Fatal(err)
	}
	schedule, err := faults.NewBlackout(3, 30, 4, 5, 6, 7)
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]*cogcast.Node, n)
	protos := make([]sim.Protocol, n)
	for i := range nodes {
		nodes[i] = cogcast.New(sim.View(asn, sim.NodeID(i)), i == 0, "m", 11)
		protos[i] = faults.Wrap(nodes[i], sim.NodeID(i), schedule)
	}
	eng, err := sim.NewEngine(asn, protos, 11)
	if err != nil {
		t.Fatal(err)
	}
	allInformed := func() bool {
		for _, nd := range nodes {
			if !nd.Informed() {
				return false
			}
		}
		return true
	}
	if _, err := eng.RunWhile(50000, func() bool { return !allInformed() }); err != nil {
		t.Fatal(err)
	}
	if !allInformed() {
		t.Fatal("COGCAST under a Crasher on a dynamic assignment never completed")
	}
}

// restartProbe records the Restartable calls a Crasher makes.
type restartProbe struct {
	missed    []int
	restarted []int
	step      int
}

func (p *restartProbe) Step(slot int) sim.Action { p.step++; return sim.Idle() }
func (p *restartProbe) Deliver(int, sim.Event)   {}
func (p *restartProbe) Done() bool               { return false }
func (p *restartProbe) MissSlot(slot int)        { p.missed = append(p.missed, slot) }
func (p *restartProbe) Restart(slot int)         { p.restarted = append(p.restarted, slot) }

func TestCrasherWithRestart(t *testing.T) {
	b, err := faults.NewBlackout(2, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	probe := &restartProbe{}
	c := faults.Wrap(probe, 1, b, faults.WithRestart())
	for slot := 0; slot < 8; slot++ {
		c.Step(slot)
	}
	if got, want := len(probe.missed), 3; got != want {
		t.Fatalf("MissSlot called %d times (%v), want %d", got, probe.missed, want)
	}
	for i, slot := range []int{2, 3, 4} {
		if probe.missed[i] != slot {
			t.Fatalf("missed slots %v, want [2 3 4]", probe.missed)
		}
	}
	if len(probe.restarted) != 1 || probe.restarted[0] != 5 {
		t.Fatalf("Restart calls %v, want [5]", probe.restarted)
	}
	if c.Restarts() != 1 {
		t.Errorf("Restarts() = %d, want 1", c.Restarts())
	}
	if c.Down() {
		t.Error("Down() still true after recovery")
	}
	if probe.step != 5 { // slots 0, 1, 5, 6, 7
		t.Errorf("inner Step called %d times, want 5", probe.step)
	}
}

func TestCrasherWithRestartDegradesGracefully(t *testing.T) {
	// A protocol that is not Restartable keeps the plain outage behavior.
	b, err := faults.NewBlackout(0, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	asn, err := assign.FullOverlap(2, 1, assign.LocalLabels, 1)
	if err != nil {
		t.Fatal(err)
	}
	inner := cogcast.New(sim.View(asn, 1), true, "x", 1)
	c := faults.Wrap(inner, 1, b, faults.WithRestart())
	for slot := 0; slot < 4; slot++ {
		c.Step(slot)
	}
	if c.Restarts() != 0 {
		t.Errorf("non-Restartable inner counted %d restarts", c.Restarts())
	}
	if c.DownSlots() != 3 {
		t.Errorf("DownSlots = %d, want 3", c.DownSlots())
	}
}
