// Package faults injects temporary node failures into simulations. The
// paper argues (Section 1) that COGCAST's stateless per-slot behavior makes
// it robust to "changes to the network conditions, temporary faults, and so
// on"; this package makes that claim testable: a Crasher wraps any
// sim.Protocol and silences it during adversarially or randomly scheduled
// outages — the node neither transmits nor hears anything while down, as if
// its radio lost power.
//
// The contrast experiment (E20) shows the flip side: the same outages that
// barely slow COGCAST break COGCOMP's tightly scheduled phases, which is
// exactly why the paper presents the simple epidemic primitive as the
// robust building block.
package faults

import (
	"fmt"

	"github.com/cogradio/crn/internal/rng"
	"github.com/cogradio/crn/internal/sim"
	"github.com/cogradio/crn/internal/trace"
)

// Schedule decides whether a node is up in a given slot. Implementations
// must be deterministic functions of their inputs.
type Schedule interface {
	// Up reports whether the node's radio works during the slot.
	Up(node sim.NodeID, slot int) bool
	// Name identifies the schedule in reports.
	Name() string
}

// AlwaysUp is the no-fault control schedule.
type AlwaysUp struct{}

var _ Schedule = AlwaysUp{}

// Up implements Schedule.
func (AlwaysUp) Up(sim.NodeID, int) bool { return true }

// Name implements Schedule.
func (AlwaysUp) Name() string { return "none" }

// RandomOutages takes each node down independently with probability p per
// slot, for an outage of fixed duration. Outage starts are derived from
// (seed, node, slot), so runs are reproducible.
type RandomOutages struct {
	p        float64
	duration int
	seed     int64
	protect  map[sim.NodeID]bool
}

var _ Schedule = (*RandomOutages)(nil)

// NewRandomOutages builds a schedule where every unprotected node goes down
// with per-slot probability p for duration slots. Protected nodes (e.g. a
// source that must stay alive for broadcast to be solvable) never fail.
func NewRandomOutages(p float64, duration int, seed int64, protect ...sim.NodeID) (*RandomOutages, error) {
	if p < 0 || p >= 1 {
		return nil, fmt.Errorf("faults: outage probability %v outside [0,1)", p)
	}
	if duration < 1 {
		return nil, fmt.Errorf("faults: outage duration %d must be positive", duration)
	}
	prot := make(map[sim.NodeID]bool, len(protect))
	for _, id := range protect {
		prot[id] = true
	}
	return &RandomOutages{p: p, duration: duration, seed: seed, protect: prot}, nil
}

// Name implements Schedule.
func (*RandomOutages) Name() string { return "random-outages" }

// Up implements Schedule: the node is down in slot t if an outage started
// in any of the slots (t-duration, t]. Each slot independently starts an
// outage with probability p.
func (r *RandomOutages) Up(node sim.NodeID, slot int) bool {
	if r.protect[node] {
		return true
	}
	start := slot - r.duration + 1
	if start < 0 {
		start = 0
	}
	for s := start; s <= slot; s++ {
		if rng.Uniform01(r.seed, int64(node), int64(s), 0xfa17) < r.p {
			return false
		}
	}
	return true
}

// CorrelatedOutages takes whole clusters of adjacent nodes down together —
// modelling co-located radios that share a power feed or lose a band at
// once. Nodes are grouped into consecutive blocks of groupSize ids; each
// group independently starts an outage with probability p per slot, and
// every unprotected member of the group is down for its duration. Outage
// starts are derived from (seed, group, slot), so runs are reproducible.
type CorrelatedOutages struct {
	p         float64
	duration  int
	groupSize int
	seed      int64
	protect   map[sim.NodeID]bool
}

var _ Schedule = (*CorrelatedOutages)(nil)

// NewCorrelatedOutages builds a schedule where each block of groupSize
// consecutive node ids goes down together with per-slot probability p for
// duration slots. Protected nodes never fail even when their group does.
func NewCorrelatedOutages(p float64, duration, groupSize int, seed int64, protect ...sim.NodeID) (*CorrelatedOutages, error) {
	if p < 0 || p >= 1 {
		return nil, fmt.Errorf("faults: outage probability %v outside [0,1)", p)
	}
	if duration < 1 {
		return nil, fmt.Errorf("faults: outage duration %d must be positive", duration)
	}
	if groupSize < 1 {
		return nil, fmt.Errorf("faults: group size %d must be positive", groupSize)
	}
	prot := make(map[sim.NodeID]bool, len(protect))
	for _, id := range protect {
		prot[id] = true
	}
	return &CorrelatedOutages{p: p, duration: duration, groupSize: groupSize, seed: seed, protect: prot}, nil
}

// Name implements Schedule.
func (*CorrelatedOutages) Name() string { return "correlated-outages" }

// Up implements Schedule: the node is down in slot t if its group started
// an outage in any of the slots (t-duration, t].
func (c *CorrelatedOutages) Up(node sim.NodeID, slot int) bool {
	if c.protect[node] {
		return true
	}
	group := int64(node) / int64(c.groupSize)
	start := slot - c.duration + 1
	if start < 0 {
		start = 0
	}
	for s := start; s <= slot; s++ {
		if rng.Uniform01(c.seed, group, int64(s), 0xc011) < c.p {
			return false
		}
	}
	return true
}

// Blackout takes a fixed set of nodes down during one interval — the
// deterministic worst-case "a whole region lost power" fault.
type Blackout struct {
	from, until int // [from, until)
	nodes       map[sim.NodeID]bool
}

var _ Schedule = (*Blackout)(nil)

// NewBlackout builds a schedule where the listed nodes are down for slots
// [from, until).
func NewBlackout(from, until int, nodes ...sim.NodeID) (*Blackout, error) {
	if from < 0 || until < from {
		return nil, fmt.Errorf("faults: invalid blackout interval [%d, %d)", from, until)
	}
	set := make(map[sim.NodeID]bool, len(nodes))
	for _, id := range nodes {
		set[id] = true
	}
	return &Blackout{from: from, until: until, nodes: set}, nil
}

// Name implements Schedule.
func (*Blackout) Name() string { return "blackout" }

// Up implements Schedule.
func (b *Blackout) Up(node sim.NodeID, slot int) bool {
	return !b.nodes[node] || slot < b.from || slot >= b.until
}

// Crasher wraps a protocol with a fault schedule: while down, the node
// idles and hears nothing; its inner protocol does not even observe the
// slots passing (its Step is not called), modelling a powered-off radio
// whose firmware clock resumes with the global slot number — the synchrony
// assumption of the model survives because slots are globally numbered.
type Crasher struct {
	inner    sim.Protocol
	id       sim.NodeID
	schedule Schedule
	downed   int
	down     bool
	sink     trace.Sink
	restart  Restartable
	restarts int
}

// Restartable is the contract crash-restart faults need from a protocol:
// MissSlot records a slot the node was down for (so slot-aligned state
// such as COGCOMP's phase-one action log stays consistent), and Restart
// wipes whatever state the protocol's durability model declares volatile
// at the given slot. cogcomp.Node implements it.
type Restartable interface {
	MissSlot(slot int)
	Restart(slot int)
}

var _ sim.Protocol = (*Crasher)(nil)

// Option configures a Crasher.
type Option func(*Crasher)

// WithTrace makes the crasher emit a trace.KindFault event on every
// up/down transition of its schedule. A nil sink disables emission, so
// callers can pass a possibly-nil sink through unconditionally.
func WithTrace(sink trace.Sink) Option {
	return func(c *Crasher) { c.sink = sink }
}

// WithRestart turns outages into crash-restarts: while down the inner
// protocol's missed slots are recorded, and when the node comes back its
// volatile state is wiped (Restartable.Restart) — it returns with what its
// durability model preserved, not a frozen snapshot. If the inner protocol
// does not implement Restartable the option silently degrades to the plain
// outage (silence-only) behavior.
func WithRestart() Option {
	return func(c *Crasher) { c.restart, _ = c.inner.(Restartable) }
}

// Wrap decorates a protocol with the fault schedule.
func Wrap(inner sim.Protocol, id sim.NodeID, schedule Schedule, opts ...Option) *Crasher {
	c := &Crasher{inner: inner, id: id, schedule: schedule}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// Step implements sim.Protocol.
func (c *Crasher) Step(slot int) sim.Action {
	up := c.schedule.Up(c.id, slot)
	if up == c.down {
		c.down = !up
		if c.sink != nil {
			c.sink.Emit(trace.FaultEvent(slot, int(c.id), c.down))
		}
		if up && c.restart != nil {
			// The node comes back from a crash: wipe volatile state.
			c.restart.Restart(slot)
			c.restarts++
			if c.sink != nil {
				c.sink.Emit(trace.RestartEvent(slot, int(c.id)))
			}
		}
	}
	if !up {
		c.downed++
		if c.restart != nil {
			c.restart.MissSlot(slot)
		}
		return sim.Idle()
	}
	act := c.inner.Step(slot)
	// Strip any dormancy hint: the inner protocol cannot promise "no state
	// change for k slots" across a fault boundary it knows nothing about —
	// a crash mid-promise must be observed at the scheduled slot, so a
	// fault-wrapped node is stepped densely.
	act.Sleep = 0
	return act
}

// Deliver implements sim.Protocol. Down nodes cannot receive, but the
// engine only delivers to nodes that acted, and a down node idles — so this
// forwards unconditionally and the schedule is still airtight.
func (c *Crasher) Deliver(slot int, ev sim.Event) { c.inner.Deliver(slot, ev) }

// Done implements sim.Protocol.
func (c *Crasher) Done() bool { return c.inner.Done() }

// DownSlots returns how many slots the node spent offline.
func (c *Crasher) DownSlots() int { return c.downed }

// Down reports whether the node is currently offline (as of its last Step).
func (c *Crasher) Down() bool { return c.down }

// Restarts returns how many crash-restarts the node performed (always zero
// without WithRestart).
func (c *Crasher) Restarts() int { return c.restarts }
