package faults_test

import (
	"errors"
	"testing"

	"github.com/cogradio/crn/internal/aggfunc"
	"github.com/cogradio/crn/internal/assign"
	"github.com/cogradio/crn/internal/cogcast"
	"github.com/cogradio/crn/internal/cogcomp"
	"github.com/cogradio/crn/internal/faults"
	"github.com/cogradio/crn/internal/sim"
)

func TestAlwaysUp(t *testing.T) {
	s := faults.AlwaysUp{}
	if !s.Up(3, 100) || s.Name() != "none" {
		t.Error("AlwaysUp misbehaves")
	}
}

func TestRandomOutagesValidation(t *testing.T) {
	if _, err := faults.NewRandomOutages(1.0, 5, 1); err == nil {
		t.Error("p=1 accepted")
	}
	if _, err := faults.NewRandomOutages(-0.1, 5, 1); err == nil {
		t.Error("negative p accepted")
	}
	if _, err := faults.NewRandomOutages(0.1, 0, 1); err == nil {
		t.Error("zero duration accepted")
	}
}

func TestRandomOutagesProtection(t *testing.T) {
	s, err := faults.NewRandomOutages(0.9, 3, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	for slot := 0; slot < 100; slot++ {
		if !s.Up(0, slot) {
			t.Fatalf("protected node down at slot %d", slot)
		}
	}
	downs := 0
	for slot := 0; slot < 100; slot++ {
		if !s.Up(1, slot) {
			downs++
		}
	}
	if downs == 0 {
		t.Error("p=0.9 outages never took node 1 down")
	}
}

func TestRandomOutagesDurationRespected(t *testing.T) {
	s, err := faults.NewRandomOutages(0.05, 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	// Whenever a node transitions up->down, it must stay down for at least
	// ... an outage lasts `duration` slots, though overlapping outages can
	// extend it. Check minimum length.
	for node := sim.NodeID(1); node < 5; node++ {
		run := 0
		for slot := 0; slot < 400; slot++ {
			if !s.Up(node, slot) {
				run++
				continue
			}
			if run > 0 && run < 4 {
				t.Fatalf("node %d outage lasted only %d slots, want >= 4", node, run)
			}
			run = 0
		}
	}
}

func TestBlackout(t *testing.T) {
	b, err := faults.NewBlackout(10, 20, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Up(2, 9) || b.Up(2, 10) || b.Up(3, 19) || !b.Up(3, 20) {
		t.Error("blackout interval boundaries wrong")
	}
	if !b.Up(5, 15) {
		t.Error("unlisted node affected")
	}
	if _, err := faults.NewBlackout(5, 2); err == nil {
		t.Error("inverted interval accepted")
	}
}

func TestCrasherSilencesDownNode(t *testing.T) {
	b, err := faults.NewBlackout(0, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	asn, err := assign.FullOverlap(2, 1, assign.LocalLabels, 1)
	if err != nil {
		t.Fatal(err)
	}
	inner := cogcast.New(sim.View(asn, 1), true, "x", 1) // informed node: would broadcast
	crashed := faults.Wrap(inner, 1, b)
	for slot := 0; slot < 5; slot++ {
		if act := crashed.Step(slot); act.Op != sim.OpIdle {
			t.Fatalf("slot %d: down node acted %v", slot, act.Op)
		}
	}
	if act := crashed.Step(5); act.Op != sim.OpBroadcast {
		t.Fatalf("recovered node should broadcast, got %v", act.Op)
	}
	if crashed.DownSlots() != 5 {
		t.Errorf("DownSlots = %d, want 5", crashed.DownSlots())
	}
}

// runFaultyCogcast runs COGCAST with a fault schedule and reports slots and
// completion.
func runFaultyCogcast(t *testing.T, schedule faults.Schedule, seed int64) (int, bool) {
	t.Helper()
	const n, c, k = 32, 8, 2
	asn, err := assign.Partitioned(n, c, k, assign.LocalLabels, seed)
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]*cogcast.Node, n)
	protos := make([]sim.Protocol, n)
	for i := range nodes {
		nodes[i] = cogcast.New(sim.View(asn, sim.NodeID(i)), i == 0, "m", seed)
		protos[i] = faults.Wrap(nodes[i], sim.NodeID(i), schedule)
	}
	eng, err := sim.NewEngine(asn, protos, seed)
	if err != nil {
		t.Fatal(err)
	}
	informed := func() bool {
		for _, nd := range nodes {
			if !nd.Informed() {
				return false
			}
		}
		return true
	}
	_, err = eng.RunWhile(100000, func() bool { return !informed() })
	if err != nil && !errors.Is(err, sim.ErrMaxSlots) {
		t.Fatal(err)
	}
	return eng.Slot(), informed()
}

func TestCogcastSurvivesRandomOutages(t *testing.T) {
	// The paper's robustness claim: with the source protected, COGCAST
	// completes despite per-slot outages. Completion may be slower; it must
	// not fail.
	for seed := int64(0); seed < 5; seed++ {
		schedule, err := faults.NewRandomOutages(0.02, 10, seed, 0)
		if err != nil {
			t.Fatal(err)
		}
		slots, done := runFaultyCogcast(t, schedule, seed)
		if !done {
			t.Fatalf("seed %d: COGCAST defeated by outages after %d slots", seed, slots)
		}
	}
}

func TestCogcastSurvivesBlackout(t *testing.T) {
	// Half the network dark for 40 slots mid-broadcast.
	schedule, err := faults.NewBlackout(5, 45, 8, 9, 10, 11, 12, 13, 14, 15)
	if err != nil {
		t.Fatal(err)
	}
	slots, done := runFaultyCogcast(t, schedule, 3)
	if !done {
		t.Fatalf("COGCAST defeated by blackout after %d slots", slots)
	}
}

func TestCogcompBrittleUnderFaults(t *testing.T) {
	// The contrast to COGCAST's robustness: COGCOMP's census, rewind and
	// convergecast assume synchronized participation, so heavy outages
	// derail it — typically as a stall (budget exhausted), occasionally as
	// a corrupted aggregate. This test documents the brittleness: across
	// several seeds at a high fault rate, at least one run must deviate
	// from the true sum, and the fault-free control must stay correct.
	const n = 32
	inputs := make([]int64, n)
	var want int64
	for i := range inputs {
		inputs[i] = int64(i + 1)
		want += inputs[i]
	}

	runFaulty := func(seed int64) (value aggfunc.Value, stalled bool) {
		asn, err := assign.Partitioned(n, 8, 2, assign.LocalLabels, seed)
		if err != nil {
			t.Fatal(err)
		}
		schedule, err := faults.NewRandomOutages(0.05, 20, seed, 0)
		if err != nil {
			t.Fatal(err)
		}
		l := cogcomp.PhaseOneLength(n, 8, 2, cogcast.DefaultKappa)
		nodes := make([]*cogcomp.Node, n)
		protos := make([]sim.Protocol, n)
		for i := range nodes {
			nodes[i] = cogcomp.New(sim.View(asn, sim.NodeID(i)), i == 0, n, l, inputs[i], aggfunc.Sum{}, seed)
			protos[i] = faults.Wrap(nodes[i], sim.NodeID(i), schedule)
		}
		eng, err := sim.NewEngine(asn, protos, seed)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Run(20 * (2*l + n)); err != nil {
			if errors.Is(err, sim.ErrMaxSlots) {
				return nil, true
			}
			t.Fatal(err)
		}
		return nodes[0].Aggregate(), false
	}

	deviated := 0
	for seed := int64(1); seed <= 6; seed++ {
		value, stalled := runFaulty(seed)
		if stalled || value != want {
			deviated++
		}
	}
	if deviated == 0 {
		t.Error("COGCOMP completed correctly under heavy faults on every seed; expected brittleness")
	}

	// Fault-free control stays exact.
	asn, err := assign.Partitioned(n, 8, 2, assign.LocalLabels, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cogcomp.Run(asn, 0, inputs, 5, cogcomp.Config{})
	if err != nil {
		t.Fatalf("fault-free control run failed: %v", err)
	}
	if res.Value != want {
		t.Fatalf("control aggregate %v != %d", res.Value, want)
	}
}
