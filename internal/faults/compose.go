package faults

import (
	"fmt"
	"strings"

	"github.com/cogradio/crn/internal/sim"
)

// Clipped restricts an inner schedule to a slot window: outside
// [from, until) every node is up, inside the inner schedule decides. An
// until of 0 leaves the window open-ended. This is how the scenario DSL's
// timed events turn whole-run schedules (RandomOutages,
// CorrelatedOutages) into episodes — a churn storm between two slots, a
// correlated outage wave that ends.
type Clipped struct {
	inner       Schedule
	from, until int
}

var _ Schedule = (*Clipped)(nil)

// NewClipped wraps inner so it only applies during slots [from, until)
// (until 0 = no upper bound).
func NewClipped(inner Schedule, from, until int) (*Clipped, error) {
	if inner == nil {
		return nil, fmt.Errorf("faults: clip of a nil schedule")
	}
	if from < 0 || (until != 0 && until <= from) {
		return nil, fmt.Errorf("faults: invalid clip window [%d, %d)", from, until)
	}
	return &Clipped{inner: inner, from: from, until: until}, nil
}

// Name implements Schedule.
func (c *Clipped) Name() string {
	if c.until == 0 {
		return fmt.Sprintf("%s[%d:]", c.inner.Name(), c.from)
	}
	return fmt.Sprintf("%s[%d:%d]", c.inner.Name(), c.from, c.until)
}

// Up implements Schedule.
func (c *Clipped) Up(node sim.NodeID, slot int) bool {
	if slot < c.from || (c.until != 0 && slot >= c.until) {
		return true
	}
	return c.inner.Up(node, slot)
}

// Composed is the conjunction of several schedules: a node is up only when
// every constituent says it is. It lets a scenario layer independent fault
// processes — background random churn plus a targeted blackout — into the
// one Schedule the recovery supervisor accepts.
type Composed struct {
	parts []Schedule
}

var _ Schedule = (*Composed)(nil)

// Compose combines schedules into one. With a single schedule it returns
// that schedule unchanged, so composing never perturbs the single-source
// fast path (or its byte-identity with hand-wired runs).
func Compose(parts ...Schedule) (Schedule, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("faults: compose of no schedules")
	}
	for i, p := range parts {
		if p == nil {
			return nil, fmt.Errorf("faults: compose part %d is nil", i)
		}
	}
	if len(parts) == 1 {
		return parts[0], nil
	}
	return &Composed{parts: append([]Schedule(nil), parts...)}, nil
}

// Name implements Schedule.
func (c *Composed) Name() string {
	names := make([]string, len(c.parts))
	for i, p := range c.parts {
		names[i] = p.Name()
	}
	return "compose(" + strings.Join(names, "+") + ")"
}

// Up implements Schedule.
func (c *Composed) Up(node sim.NodeID, slot int) bool {
	for _, p := range c.parts {
		if !p.Up(node, slot) {
			return false
		}
	}
	return true
}
