package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// Version is the trace schema version written into every JSONL header.
// The rule (documented in TRACE.md): adding event kinds or fields keeps
// the version; renaming or re-typing anything bumps it, and readers must
// reject traces whose version they do not know.
const Version = 1

// JSONL is a Sink that streams events as JSON Lines in the format
// documented in TRACE.md: one header object first, then one object per
// event. Write errors are sticky — the first one is retained, subsequent
// emissions become no-ops, and Err reports it; callers check Err (after
// flushing any buffering they wrapped around w) when the run ends.
//
// JSONL reuses one line buffer across events, so steady-state emission
// does not allocate per event; the encoding work itself still makes
// tracing-to-disk slower than the Ring sink.
type JSONL struct {
	w          io.Writer
	line       []byte
	meta       Meta
	headerDone bool
	finished   bool
	events     int64
	err        error
}

var _ Sink = (*JSONL)(nil)

// NewJSONL returns a JSONL sink writing to w. Call SetMeta before the
// first event to populate the header; otherwise an all-zero header is
// written. Wrap files in a bufio.Writer and flush before checking Err.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{w: w, line: make([]byte, 0, 256)}
}

// SetMeta records the run description and writes the header line. It
// must be called at most once, before any event is emitted.
func (j *JSONL) SetMeta(m Meta) {
	j.meta = m
	j.header()
}

// Err returns the first write error, if any.
func (j *JSONL) Err() error { return j.err }

func (j *JSONL) header() {
	if j.headerDone || j.err != nil {
		return
	}
	j.headerDone = true
	b := j.line[:0]
	b = append(b, `{"schema":"crn-trace","version":`...)
	b = strconv.AppendInt(b, Version, 10)
	b = append(b, `,"protocol":`...)
	b = strconv.AppendQuote(b, j.meta.Protocol)
	b = appendField(b, "nodes", int64(j.meta.Nodes))
	b = appendField(b, "per_node", int64(j.meta.PerNode))
	b = appendField(b, "min_overlap", int64(j.meta.MinOverlap))
	b = appendField(b, "channels", int64(j.meta.Channels))
	b = appendField(b, "seed", j.meta.Seed)
	b = append(b, `,"collisions":`...)
	b = strconv.AppendQuote(b, j.meta.Collisions)
	b = append(b, '}', '\n')
	j.write(b)
}

// Emit implements Sink.
func (j *JSONL) Emit(ev Event) {
	if j.err != nil {
		return
	}
	if j.finished {
		j.err = fmt.Errorf("trace: event emitted after Finish")
		return
	}
	j.header()
	b := j.line[:0]
	b = append(b, `{"k":"`...)
	b = append(b, ev.Kind.String()...)
	b = append(b, '"')
	switch ev.Kind {
	case KindSlot:
		b = appendField(b, "t", int64(ev.Slot))
		b = appendField(b, "act", ev.A)
	case KindChannel:
		b = appendField(b, "t", int64(ev.Slot))
		b = appendField(b, "ch", int64(ev.Channel))
		b = appendField(b, "b", ev.A)
		b = appendField(b, "l", ev.B)
		b = appendField(b, "w", int64(ev.Peer))
	case KindProgress:
		b = appendField(b, "t", int64(ev.Slot))
		b = appendField(b, "inf", ev.A)
		b = appendField(b, "total", ev.B)
	case KindInformed:
		b = appendField(b, "t", int64(ev.Slot))
		b = appendField(b, "node", int64(ev.Node))
		b = appendField(b, "parent", int64(ev.Peer))
		b = appendField(b, "ch", int64(ev.Channel))
	case KindPhase:
		b = appendField(b, "t", int64(ev.Slot))
		b = appendField(b, "phase", ev.A)
		b = appendField(b, "len", ev.B)
	case KindCensus:
		b = appendField(b, "t", int64(ev.Slot))
		b = appendField(b, "inf", ev.A)
		b = appendField(b, "med", ev.B)
	case KindFault:
		b = appendField(b, "t", int64(ev.Slot))
		b = appendField(b, "node", int64(ev.Node))
		b = appendField(b, "down", ev.A)
	case KindJam:
		b = appendField(b, "t", int64(ev.Slot))
		b = appendField(b, "jammed", ev.A)
		b = appendField(b, "budget", ev.B)
	case KindTrial:
		b = appendField(b, "trial", ev.A)
		b = appendField(b, "seed", ev.B)
	case KindEpoch:
		b = appendField(b, "t", int64(ev.Slot))
		b = appendField(b, "epoch", ev.A)
		b = appendField(b, "len", ev.B)
	case KindCheckpoint:
		b = appendField(b, "t", int64(ev.Slot))
		b = appendField(b, "node", int64(ev.Node))
		b = appendField(b, "epoch", ev.A)
		b = appendField(b, "gen", ev.B)
	case KindRetry:
		b = appendField(b, "t", int64(ev.Slot))
		b = appendField(b, "epoch", ev.A)
		b = appendField(b, "attempt", ev.B)
	case KindReelect:
		b = appendField(b, "t", int64(ev.Slot))
		b = appendField(b, "ch", int64(ev.Channel))
		b = appendField(b, "node", int64(ev.Node))
		b = appendField(b, "old", int64(ev.Peer))
	case KindRestart:
		b = appendField(b, "t", int64(ev.Slot))
		b = appendField(b, "node", int64(ev.Node))
	case KindAdv:
		b = appendField(b, "t", int64(ev.Slot))
		b = appendField(b, "jam", int64(ev.Channel))
		b = appendField(b, "crash", int64(ev.Node))
		b = appendField(b, "spent", ev.A)
		b = appendField(b, "rem", ev.B)
	case KindCancel:
		b = appendField(b, "t", int64(ev.Slot))
		b = appendField(b, "deadline", ev.A)
	default:
		j.err = fmt.Errorf("trace: cannot encode invalid event kind %d", ev.Kind)
		return
	}
	b = append(b, '}', '\n')
	j.events++
	j.write(b)
}

// Finish writes the end-of-stream marker — a trailer line carrying the
// event count — and seals the sink: further Emit calls become sticky
// errors. Writers call Finish whenever the stream ends deliberately,
// including after a graceful cancel, so a trace file without the marker is
// evidence of a torn write (process kill, disk full) and readers
// (ReadAllTrailer, Summarize) surface that instead of silently folding the
// partial stream. Finish is idempotent.
func (j *JSONL) Finish() {
	if j.finished || j.err != nil {
		return
	}
	j.header() // an event-less stream still gets header + trailer
	j.finished = true
	b := j.line[:0]
	b = append(b, `{"schema":"crn-trace-eof","events":`...)
	b = strconv.AppendInt(b, j.events, 10)
	b = append(b, '}', '\n')
	j.write(b)
}

func (j *JSONL) write(b []byte) {
	j.line = b[:0] // keep the (possibly grown) buffer
	if _, err := j.w.Write(b); err != nil {
		j.err = fmt.Errorf("trace: write: %w", err)
	}
}

func appendField(b []byte, name string, v int64) []byte {
	b = append(b, ',', '"')
	b = append(b, name...)
	b = append(b, '"', ':')
	return strconv.AppendInt(b, v, 10)
}

// rawLine is the union of all JSONL fields, for decoding. Reference
// fields default to -1 so kinds that omit them round-trip to the
// constructor defaults.
type rawLine struct {
	Schema  string `json:"schema"`
	Version int    `json:"version"`

	K      string `json:"k"`
	T      *int   `json:"t"`
	Ch     int    `json:"ch"`
	B      int64  `json:"b"`
	L      int64  `json:"l"`
	W      int    `json:"w"`
	Act    int64  `json:"act"`
	Inf    int64  `json:"inf"`
	Total  int64  `json:"total"`
	Node   int    `json:"node"`
	Parent int    `json:"parent"`
	Phase  int64  `json:"phase"`
	Len    int64  `json:"len"`
	Med    int64  `json:"med"`
	Down   int64  `json:"down"`
	Jammed int64  `json:"jammed"`
	Budget int64  `json:"budget"`
	Trial  int64  `json:"trial"`
	Seed   int64  `json:"seed"`

	Epoch   int64 `json:"epoch"`
	Gen     int64 `json:"gen"`
	Attempt int64 `json:"attempt"`
	Old     int   `json:"old"`

	Jam   int64 `json:"jam"`
	Crash int64 `json:"crash"`
	Spent int64 `json:"spent"`
	Rem   int64 `json:"rem"`

	Deadline int64 `json:"deadline"`
	Events   int64 `json:"events"`

	Protocol   string `json:"protocol"`
	Nodes      int    `json:"nodes"`
	PerNode    int    `json:"per_node"`
	MinOverlap int    `json:"min_overlap"`
	Channels   int    `json:"channels"`
	Collisions string `json:"collisions"`
}

// Trailer reports how a JSONL stream ended.
type Trailer struct {
	// Complete is true when the stream closed with the end-of-stream
	// marker Finish writes. A missing marker means the writer never got to
	// seal the file — a torn write from an interrupted or crashed run.
	Complete bool
	// Events is the event count the marker claimed (equal to the parsed
	// event count; a mismatch is a read error). Zero when Complete is
	// false.
	Events int64
}

// ReadAll parses a JSONL trace: the header line, then every event, in
// order. It rejects missing or foreign headers and unknown schema
// versions (the versioning rule of TRACE.md), and fails on any malformed
// line so validation errors carry the line number. ReadAll tolerates a
// missing end-of-stream marker; use ReadAllTrailer to detect truncation.
func ReadAll(r io.Reader) (Meta, []Event, error) {
	meta, events, _, err := ReadAllTrailer(r)
	return meta, events, err
}

// ReadAllTrailer is ReadAll plus the stream's Trailer, so callers can
// distinguish a sealed trace (possibly ending in a cancel event) from a
// torn one that lost its tail.
func ReadAllTrailer(r io.Reader) (Meta, []Event, Trailer, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	var meta Meta
	var events []Event
	var trailer Trailer
	for sc.Scan() {
		lineNo++
		text := sc.Bytes()
		if len(text) == 0 {
			continue
		}
		raw := rawLine{T: nil, Ch: -1, W: -1, Node: -1, Parent: -1, Old: -1}
		if err := json.Unmarshal(text, &raw); err != nil {
			return meta, nil, trailer, fmt.Errorf("trace: line %d: %w", lineNo, err)
		}
		if lineNo == 1 {
			if raw.Schema != "crn-trace" {
				return meta, nil, trailer, fmt.Errorf("trace: line 1: not a crn-trace header (schema %q)", raw.Schema)
			}
			if raw.Version != Version {
				return meta, nil, trailer, fmt.Errorf("trace: unsupported schema version %d (reader supports %d)", raw.Version, Version)
			}
			meta = Meta{
				Protocol:   raw.Protocol,
				Nodes:      raw.Nodes,
				PerNode:    raw.PerNode,
				MinOverlap: raw.MinOverlap,
				Channels:   raw.Channels,
				Seed:       raw.Seed,
				Collisions: raw.Collisions,
			}
			continue
		}
		if trailer.Complete {
			return meta, nil, trailer, fmt.Errorf("trace: line %d: content after the end-of-stream marker", lineNo)
		}
		if raw.Schema == "crn-trace-eof" {
			if raw.Events != int64(len(events)) {
				return meta, nil, trailer, fmt.Errorf("trace: end-of-stream marker claims %d events, stream carries %d", raw.Events, len(events))
			}
			trailer = Trailer{Complete: true, Events: raw.Events}
			continue
		}
		ev, err := raw.event()
		if err != nil {
			return meta, nil, trailer, fmt.Errorf("trace: line %d: %w", lineNo, err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return meta, nil, trailer, fmt.Errorf("trace: read: %w", err)
	}
	if lineNo == 0 {
		return meta, nil, trailer, fmt.Errorf("trace: empty input (missing header)")
	}
	return meta, events, trailer, nil
}

func (raw *rawLine) event() (Event, error) {
	slot := -1
	if raw.T != nil {
		slot = *raw.T
	}
	switch raw.K {
	case "slot":
		return SlotEvent(slot, int(raw.Act)), nil
	case "chan":
		return ChannelEvent(slot, raw.Ch, raw.W, int(raw.B), int(raw.L)), nil
	case "progress":
		return ProgressEvent(slot, int(raw.Inf), int(raw.Total)), nil
	case "informed":
		return InformedEvent(slot, raw.Node, raw.Parent, raw.Ch), nil
	case "phase":
		return PhaseEvent(slot, int(raw.Phase), int(raw.Len)), nil
	case "census":
		return CensusEvent(slot, int(raw.Inf), int(raw.Med)), nil
	case "fault":
		return FaultEvent(slot, raw.Node, raw.Down != 0), nil
	case "jam":
		return JamEvent(slot, int(raw.Jammed), int(raw.Budget)), nil
	case "trial":
		return TrialEvent(int(raw.Trial), raw.Seed), nil
	case "epoch":
		return EpochEvent(slot, int(raw.Epoch), int(raw.Len)), nil
	case "ckpt":
		return CheckpointEvent(slot, raw.Node, int(raw.Epoch), int(raw.Gen)), nil
	case "retry":
		return RetryEvent(slot, int(raw.Epoch), int(raw.Attempt)), nil
	case "reelect":
		return ReelectEvent(slot, raw.Ch, raw.Node, raw.Old), nil
	case "restart":
		return RestartEvent(slot, raw.Node), nil
	case "adv":
		return AdvEvent(slot, int(raw.Jam), int(raw.Crash), int(raw.Spent), int(raw.Rem)), nil
	case "cancel":
		return CancelEvent(slot, raw.Deadline != 0), nil
	default:
		return Event{}, fmt.Errorf("unknown event kind %q", raw.K)
	}
}
