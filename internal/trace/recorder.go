package trace

import "github.com/cogradio/crn/internal/sim"

// Recorder adapts the engine's sim.Observer hook to a Sink: per slot it
// emits one KindChannel event for every active channel followed by one
// KindSlot marker, which together are exactly the inputs
// metrics.Collector folds — Summarize reconstructs the collector's
// aggregates from them.
//
// Recorder copies only counts and identities out of the engine-owned
// outcome scratch, so it allocates nothing per slot; with a Ring sink the
// whole observed path stays at 0 allocs/op.
type Recorder struct {
	sink Sink
}

var _ sim.Observer = (*Recorder)(nil)

// NewRecorder returns a Recorder emitting into sink.
func NewRecorder(sink Sink) *Recorder { return &Recorder{sink: sink} }

// OnSlot implements sim.Observer.
func (r *Recorder) OnSlot(slot int, outcomes []sim.ChannelOutcome) {
	for _, oc := range outcomes {
		r.sink.Emit(ChannelEvent(slot, oc.Channel, int(oc.Winner), len(oc.Broadcasters), len(oc.Listeners)))
	}
	r.sink.Emit(SlotEvent(slot, len(outcomes)))
}
