package trace

import (
	"fmt"
	"io"

	"github.com/cogradio/crn/internal/metrics"
	"github.com/cogradio/crn/internal/sim"
)

// Summary is the fold of one trace file back into aggregate numbers.
type Summary struct {
	// Meta is the trace header.
	Meta Meta
	// Metrics is the medium summary replayed from the trace's channel and
	// slot events through a real metrics.Collector — byte-identical to
	// what a live collector on the same run reports, which is the
	// consistency check cogsim -trace-summary performs.
	Metrics metrics.Metrics
	// Events counts every event by kind.
	Events map[Kind]int
	// FinalInformed and TotalNodes carry the last KindProgress event
	// (-1/-1 when the trace has none).
	FinalInformed, TotalNodes int
	// Phases lists the KindPhase events in order.
	Phases []Event
	// Complete reports that the stream ended with the end-of-stream
	// marker. False means the file lost its tail — the metrics above cover
	// only the recorded prefix, and callers should say so rather than
	// present them as a whole run.
	Complete bool
	// Cancel points at the KindCancel event when the run was interrupted
	// gracefully (nil otherwise): the run stopped at that slot boundary,
	// by deadline when Cancel.A is 1.
	Cancel *Event
}

// Summarize reads a JSONL trace and folds it into a Summary. The medium
// metrics are recomputed by replaying the per-channel outcomes into a
// metrics.Collector: KindChannel events accumulate per slot and each
// KindSlot marker closes the slot, mirroring the live observer cadence.
func Summarize(r io.Reader) (*Summary, error) {
	meta, events, trailer, err := ReadAllTrailer(r)
	if err != nil {
		return nil, err
	}
	s := &Summary{
		Meta:          meta,
		Events:        make(map[Kind]int),
		FinalInformed: -1,
		TotalNodes:    -1,
		Complete:      trailer.Complete,
	}
	var col metrics.Collector
	var pending []sim.ChannelOutcome
	// The collector only reads slice lengths; one shared backing array
	// sized to the largest count observed stands in for the node lists.
	var nodes []sim.NodeID
	grow := func(n int) []sim.NodeID {
		for len(nodes) < n {
			nodes = append(nodes, sim.None)
		}
		return nodes[:n]
	}
	for _, ev := range events {
		s.Events[ev.Kind]++
		switch ev.Kind {
		case KindChannel:
			pending = append(pending, sim.ChannelOutcome{
				Channel:      ev.Channel,
				Winner:       sim.NodeID(ev.Peer),
				Broadcasters: grow(int(ev.A)),
				Listeners:    grow(int(ev.B)),
			})
		case KindSlot:
			if int64(len(pending)) != ev.A {
				return nil, fmt.Errorf("trace: slot %d marker claims %d active channels, stream carries %d",
					ev.Slot, ev.A, len(pending))
			}
			col.OnSlot(ev.Slot, pending)
			pending = pending[:0]
		case KindProgress:
			s.FinalInformed = int(ev.A)
			s.TotalNodes = int(ev.B)
		case KindPhase:
			s.Phases = append(s.Phases, ev)
		case KindCancel:
			ev := ev
			s.Cancel = &ev
		}
	}
	if len(pending) != 0 {
		return nil, fmt.Errorf("trace: %d channel events after the last slot marker (truncated trace?)", len(pending))
	}
	s.Metrics = col.Snapshot()
	return s, nil
}
