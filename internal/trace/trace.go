// Package trace records structured, replayable event streams from
// simulation runs: per-slot channel outcomes from the engine (via the
// sim.Observer hook) plus protocol-level events — COGCAST epidemic
// progress, COGCOMP phase transitions and cluster census, fault and
// jamming injections, experiment trial boundaries.
//
// Events flow into a Sink. Two sinks are provided: JSONL streams the
// documented on-disk format (see TRACE.md for the schema and its
// versioning rule), and Ring keeps the last N events in a preallocated
// in-memory buffer with zero per-event allocation, for always-on flight
// recording inside hot loops.
//
// Tracing is strictly opt-in and zero-cost when disabled: every producer
// holds a Sink interface value and emits nothing when it is nil, so the
// untraced slot path is byte-for-byte the PR-1 zero-allocation engine
// loop (pinned by TestTraceDisabledAllocFree). Attaching a sink never
// changes simulation results either — the engine draws randomness only
// when resolving contended channels, which observers do not affect.
package trace

// Kind classifies a trace event. The JSONL encoding of each kind is
// documented in TRACE.md; the String method returns the on-disk "k" tag.
type Kind uint8

// Event kinds.
const (
	// KindSlot marks the end of one engine slot; A is the number of
	// physical channels that saw any activity.
	KindSlot Kind = iota + 1
	// KindChannel reports one physical channel's outcome in one slot:
	// A broadcasters, B listeners, Peer the winning broadcaster (or -1).
	KindChannel
	// KindProgress reports COGCAST epidemic progress: A nodes informed of
	// B total, after the event's slot (slot -1 is the initial state).
	KindProgress
	// KindInformed reports that Node was first informed by Peer on local
	// channel Channel during the event's slot.
	KindInformed
	// KindPhase marks a COGCOMP phase transition: phase A (1-4) starts at
	// the event's slot and nominally lasts B slots (0 = run-to-completion).
	KindPhase
	// KindCensus summarizes COGCOMP's tree census at termination: A nodes
	// informed (cluster members), B mediators elected.
	KindCensus
	// KindFault reports a fault-schedule transition for Node: A is 1 when
	// the node goes down, 0 when it comes back up.
	KindFault
	// KindJam reports jamming injected in one slot: A channel-slots jammed
	// across all nodes, B the adversary's per-node budget.
	KindJam
	// KindTrial marks the start of an experiment repetition: trial index A
	// running with derived seed B.
	KindTrial
	// KindEpoch marks a recovery epoch boundary: epoch A (1-4, mirroring
	// the COGCOMP phases) begins at the event's slot with a window of B
	// slots (0 = run-to-completion).
	KindEpoch
	// KindCheckpoint reports that Node committed its epoch-A checkpoint at
	// the event's slot (B is the supervisor's checkpoint generation).
	KindCheckpoint
	// KindRetry reports that the recovery supervisor re-executes epoch A;
	// B is the retry attempt (1 = first retry).
	KindRetry
	// KindReelect reports a mediator re-election on physical channel
	// Channel: Node is the new mediator, Peer the demoted one.
	KindReelect
	// KindRestart reports that Node came back from a crash at the event's
	// slot with what its durability model preserved (crash-restart faults).
	KindRestart
	// KindAdv reports a reactive adversary's energy spend in one slot:
	// Channel carries the jammed-channel count, Node the crashed-node
	// count, A the total energy charged (their sum) and B the reserve
	// remaining after the charge. Slots in which the adversary spent
	// nothing emit no event, so B chains exactly from one event to the
	// next (the invariant.Stream ledger check).
	KindAdv
	// KindCancel reports that the run was interrupted at a slot boundary
	// by context cancellation or deadline expiry: the event's slot is the
	// number of fully executed slots, A is 1 when a deadline expired and 0
	// for a plain cancel. It is the stream's last protocol event; a
	// gracefully interrupted trace still ends with the eof marker, so
	// readers can tell a clean cancel from a torn file.
	KindCancel
)

// String returns the kind's on-disk tag.
func (k Kind) String() string {
	switch k {
	case KindSlot:
		return "slot"
	case KindChannel:
		return "chan"
	case KindProgress:
		return "progress"
	case KindInformed:
		return "informed"
	case KindPhase:
		return "phase"
	case KindCensus:
		return "census"
	case KindFault:
		return "fault"
	case KindJam:
		return "jam"
	case KindTrial:
		return "trial"
	case KindEpoch:
		return "epoch"
	case KindCheckpoint:
		return "ckpt"
	case KindRetry:
		return "retry"
	case KindReelect:
		return "reelect"
	case KindRestart:
		return "restart"
	case KindAdv:
		return "adv"
	case KindCancel:
		return "cancel"
	default:
		return "invalid"
	}
}

// Event is one trace record. It is a fixed-size value type so sinks can
// store and pass it without allocating. Which fields are meaningful, and
// what A and B carry, depends on Kind (see the Kind constants and
// TRACE.md); unused reference fields hold -1. Use the constructor
// functions rather than struct literals so defaults stay consistent with
// the on-disk schema.
type Event struct {
	Kind Kind
	// Slot is the slot index the event belongs to, or -1 for events that
	// are not slot-scoped (trial boundaries, initial progress).
	Slot int
	// Channel is a channel index: physical for KindChannel, the informed
	// node's local index for KindInformed, -1 otherwise.
	Channel int
	// Node is the subject node, or -1.
	Node int
	// Peer is the secondary node (channel winner, informing parent), or -1.
	Peer int
	// A and B are kind-specific scalars.
	A, B int64
}

// Sink consumes trace events. Emit is called from the simulation's hot
// path; implementations must not retain references into anything beyond
// the value they are handed (Event is self-contained) and must be fast.
// Producers treat a nil Sink as "tracing disabled" and skip emission
// entirely, so the disabled path costs one nil check.
//
// Sinks are not required to be safe for concurrent use; runs that trace
// must serialize emission (the experiment harness forces serial trials
// when a sink is attached).
type Sink interface {
	Emit(Event)
}

// SlotEvent returns a KindSlot marker for the given slot with the number
// of active channels.
func SlotEvent(slot, active int) Event {
	return Event{Kind: KindSlot, Slot: slot, Channel: -1, Node: -1, Peer: -1, A: int64(active)}
}

// ChannelEvent returns a KindChannel outcome: broadcasters b and
// listeners l on physical channel ch, won by winner (-1 for none).
func ChannelEvent(slot, ch, winner, b, l int) Event {
	return Event{Kind: KindChannel, Slot: slot, Channel: ch, Node: -1, Peer: winner, A: int64(b), B: int64(l)}
}

// ProgressEvent returns a KindProgress record: informed of n nodes hold
// the message after the slot (-1 = before the first slot).
func ProgressEvent(slot, informed, n int) Event {
	return Event{Kind: KindProgress, Slot: slot, Channel: -1, Node: -1, Peer: -1, A: int64(informed), B: int64(n)}
}

// InformedEvent returns a KindInformed record: node was first informed by
// parent on its local channel ch during slot.
func InformedEvent(slot, node, parent, ch int) Event {
	return Event{Kind: KindInformed, Slot: slot, Channel: ch, Node: node, Peer: parent}
}

// PhaseEvent returns a KindPhase record: phase (1-4) starts at slot with
// nominal length slots (0 = run to completion).
func PhaseEvent(slot, phase, length int) Event {
	return Event{Kind: KindPhase, Slot: slot, Channel: -1, Node: -1, Peer: -1, A: int64(phase), B: int64(length)}
}

// CensusEvent returns a KindCensus record emitted at COGCOMP termination.
func CensusEvent(slot, informed, mediators int) Event {
	return Event{Kind: KindCensus, Slot: slot, Channel: -1, Node: -1, Peer: -1, A: int64(informed), B: int64(mediators)}
}

// FaultEvent returns a KindFault record: node transitions to down (or
// back up) at slot.
func FaultEvent(slot, node int, down bool) Event {
	ev := Event{Kind: KindFault, Slot: slot, Channel: -1, Node: node, Peer: -1}
	if down {
		ev.A = 1
	}
	return ev
}

// JamEvent returns a KindJam record: jammed channel-slots injected across
// all nodes in slot, under a per-node budget.
func JamEvent(slot, jammed, budget int) Event {
	return Event{Kind: KindJam, Slot: slot, Channel: -1, Node: -1, Peer: -1, A: int64(jammed), B: int64(budget)}
}

// TrialEvent returns a KindTrial boundary: repetition trial starts,
// seeded with seed.
func TrialEvent(trial int, seed int64) Event {
	return Event{Kind: KindTrial, Slot: -1, Channel: -1, Node: -1, Peer: -1, A: int64(trial), B: seed}
}

// EpochEvent returns a KindEpoch record: recovery epoch (1-4) begins at
// slot with a window of length slots (0 = run to completion).
func EpochEvent(slot, epoch, length int) Event {
	return Event{Kind: KindEpoch, Slot: slot, Channel: -1, Node: -1, Peer: -1, A: int64(epoch), B: int64(length)}
}

// CheckpointEvent returns a KindCheckpoint record: node commits its
// epoch checkpoint at slot under checkpoint generation gen.
func CheckpointEvent(slot, node, epoch, gen int) Event {
	return Event{Kind: KindCheckpoint, Slot: slot, Channel: -1, Node: node, Peer: -1, A: int64(epoch), B: int64(gen)}
}

// RetryEvent returns a KindRetry record: epoch is re-executed as retry
// attempt (1-based) starting at slot.
func RetryEvent(slot, epoch, attempt int) Event {
	return Event{Kind: KindRetry, Slot: slot, Channel: -1, Node: -1, Peer: -1, A: int64(epoch), B: int64(attempt)}
}

// ReelectEvent returns a KindReelect record: node replaces old as the
// mediator of physical channel ch at slot.
func ReelectEvent(slot, ch, node, old int) Event {
	return Event{Kind: KindReelect, Slot: slot, Channel: ch, Node: node, Peer: old}
}

// RestartEvent returns a KindRestart record: node returned from a crash
// at slot, recovering its WAL-backed protocol state (DESIGN.md §7).
func RestartEvent(slot, node int) Event {
	return Event{Kind: KindRestart, Slot: slot, Channel: -1, Node: node, Peer: -1}
}

// AdvEvent returns a KindAdv record: a reactive adversary jammed jam
// channels and held down crash nodes in slot, charging spent energy
// (jam+crash) with remaining reserve left afterwards.
func AdvEvent(slot, jam, crash, spent, remaining int) Event {
	return Event{Kind: KindAdv, Slot: slot, Channel: jam, Node: crash, Peer: -1, A: int64(spent), B: int64(remaining)}
}

// CancelEvent returns a KindCancel record: the run stopped at the given
// slot boundary, by deadline expiry when deadline is true and by plain
// context cancellation otherwise.
func CancelEvent(slot int, deadline bool) Event {
	ev := Event{Kind: KindCancel, Slot: slot, Channel: -1, Node: -1, Peer: -1}
	if deadline {
		ev.A = 1
	}
	return ev
}

// Meta describes the run a trace was recorded from; it becomes the JSONL
// header line. Fields that do not apply (e.g. network parameters for a
// whole-suite cogbench trace) are zero.
type Meta struct {
	// Protocol names the producer: "cogcast", "cogcomp", "exper", ...
	Protocol string
	// Nodes, PerNode, MinOverlap, Channels are the network's n, c, k, C.
	Nodes, PerNode, MinOverlap, Channels int
	// Seed is the run's root seed.
	Seed int64
	// Collisions is the engine collision model's name.
	Collisions string
}
