package trace

// Ring is a fixed-capacity in-memory sink that keeps the most recent
// events, overwriting the oldest once full — a flight recorder that can
// stay attached to hot loops: Emit never allocates after construction
// (pinned by TestTraceRingAllocFree), so "always-on tracing into a ring,
// dump on failure" costs no per-slot garbage.
type Ring struct {
	buf   []Event
	next  int
	full  bool
	total int64
}

var _ Sink = (*Ring)(nil)

// NewRing returns a ring holding the last capacity events (minimum 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Event, capacity)}
}

// Emit implements Sink.
func (r *Ring) Emit(ev Event) {
	r.buf[r.next] = ev
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.total++
}

// Len returns the number of events currently held.
func (r *Ring) Len() int {
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// Total returns the number of events ever emitted, including overwritten
// ones.
func (r *Ring) Total() int64 { return r.total }

// Events returns the retained events, oldest first, as a fresh slice.
func (r *Ring) Events() []Event {
	out := make([]Event, 0, r.Len())
	if r.full {
		out = append(out, r.buf[r.next:]...)
	}
	return append(out, r.buf[:r.next]...)
}
