package trace_test

import (
	"bytes"
	"strings"
	"testing"

	"github.com/cogradio/crn/internal/trace"
)

// allKinds is one event of every kind, with distinct values in every
// meaningful field so encode/decode mix-ups surface.
func allKinds() []trace.Event {
	return []trace.Event{
		trace.TrialEvent(3, -77),
		trace.ProgressEvent(-1, 1, 24),
		trace.ChannelEvent(0, 5, 9, 2, 4),
		trace.ChannelEvent(0, 7, -1, 0, 3),
		trace.SlotEvent(0, 2),
		trace.InformedEvent(0, 11, 9, 1),
		trace.PhaseEvent(12, 2, 30),
		trace.CensusEvent(40, 24, 5),
		trace.FaultEvent(17, 4, true),
		trace.FaultEvent(29, 4, false),
		trace.JamEvent(8, 36, 3),
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	meta := trace.Meta{
		Protocol: "cogcast", Nodes: 24, PerNode: 6, MinOverlap: 2,
		Channels: 18, Seed: -9, Collisions: "uniform-winner",
	}
	var buf bytes.Buffer
	sink := trace.NewJSONL(&buf)
	sink.SetMeta(meta)
	want := allKinds()
	for _, ev := range want {
		sink.Emit(ev)
	}
	if err := sink.Err(); err != nil {
		t.Fatal(err)
	}

	gotMeta, got, err := trace.ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if gotMeta != meta {
		t.Errorf("meta round-trip: got %+v, want %+v", gotMeta, meta)
	}
	if len(got) != len(want) {
		t.Fatalf("round-trip returned %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d (%s): got %+v, want %+v", i, want[i].Kind, got[i], want[i])
		}
	}
}

func TestJSONLHeaderWithoutMeta(t *testing.T) {
	var buf bytes.Buffer
	sink := trace.NewJSONL(&buf)
	sink.Emit(trace.SlotEvent(0, 0))
	if err := sink.Err(); err != nil {
		t.Fatal(err)
	}
	meta, events, err := trace.ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if (meta != trace.Meta{}) || len(events) != 1 {
		t.Errorf("got meta %+v and %d events, want zero meta and 1 event", meta, len(events))
	}
}

func TestJSONLInvalidKind(t *testing.T) {
	sink := trace.NewJSONL(&bytes.Buffer{})
	sink.Emit(trace.Event{Kind: trace.Kind(99)})
	if sink.Err() == nil {
		t.Error("encoding an invalid kind did not stick an error")
	}
}

type failWriter struct{ failed bool }

func (w *failWriter) Write(p []byte) (int, error) {
	w.failed = true
	return 0, errWrite
}

var errWrite = &writeErr{}

type writeErr struct{}

func (*writeErr) Error() string { return "disk full" }

func TestJSONLStickyError(t *testing.T) {
	w := &failWriter{}
	sink := trace.NewJSONL(w)
	sink.Emit(trace.SlotEvent(0, 0))
	if sink.Err() == nil {
		t.Fatal("write failure not reported")
	}
	w.failed = false
	sink.Emit(trace.SlotEvent(1, 0))
	if w.failed {
		t.Error("emission after a sticky error still wrote")
	}
}

func TestReadAllRejects(t *testing.T) {
	cases := map[string]string{
		"empty input":    "",
		"foreign header": `{"schema":"something-else","version":1}` + "\n",
		"missing header": `{"k":"slot","t":0,"act":0}` + "\n",
		"future version": `{"schema":"crn-trace","version":99}` + "\n",
		"unknown kind":   "{\"schema\":\"crn-trace\",\"version\":1}\n{\"k\":\"warp\"}\n",
		"malformed json": "{\"schema\":\"crn-trace\",\"version\":1}\n{oops\n",
	}
	for name, input := range cases {
		if _, _, err := trace.ReadAll(strings.NewReader(input)); err == nil {
			t.Errorf("%s: ReadAll accepted %q", name, input)
		}
	}
}

func TestRingWraps(t *testing.T) {
	r := trace.NewRing(3)
	for slot := 0; slot < 5; slot++ {
		r.Emit(trace.SlotEvent(slot, 0))
	}
	if r.Total() != 5 || r.Len() != 3 {
		t.Fatalf("Total=%d Len=%d, want 5 and 3", r.Total(), r.Len())
	}
	events := r.Events()
	for i, ev := range events {
		if ev.Slot != i+2 {
			t.Errorf("event %d has slot %d, want %d (oldest-first after wrap)", i, ev.Slot, i+2)
		}
	}
}

func TestRingPartialFill(t *testing.T) {
	r := trace.NewRing(8)
	r.Emit(trace.SlotEvent(0, 1))
	r.Emit(trace.SlotEvent(1, 2))
	if r.Len() != 2 || r.Total() != 2 {
		t.Fatalf("Len=%d Total=%d, want 2 and 2", r.Len(), r.Total())
	}
	events := r.Events()
	if len(events) != 2 || events[0].Slot != 0 || events[1].Slot != 1 {
		t.Errorf("Events() = %+v, want slots 0,1", events)
	}
}

func TestRingEmitDoesNotAllocate(t *testing.T) {
	r := trace.NewRing(16)
	ev := trace.ChannelEvent(1, 2, 3, 4, 5)
	allocs := testing.AllocsPerRun(100, func() { r.Emit(ev) })
	if allocs != 0 {
		t.Errorf("Ring.Emit allocates %.2f objects/event, want 0", allocs)
	}
}

func TestSummarizeReplaysCollector(t *testing.T) {
	var buf bytes.Buffer
	sink := trace.NewJSONL(&buf)
	sink.SetMeta(trace.Meta{Protocol: "cogcast", Nodes: 4})
	// Slot 0: one clean delivery, one collision. Slot 1: silence.
	sink.Emit(trace.ChannelEvent(0, 0, 2, 1, 3))
	sink.Emit(trace.ChannelEvent(0, 1, 3, 2, 1))
	sink.Emit(trace.SlotEvent(0, 2))
	sink.Emit(trace.SlotEvent(1, 0))
	sink.Emit(trace.ProgressEvent(1, 4, 4))
	if err := sink.Err(); err != nil {
		t.Fatal(err)
	}

	s, err := trace.Summarize(&buf)
	if err != nil {
		t.Fatal(err)
	}
	m := s.Metrics
	if m.Slots != 2 || m.BusyChannelsPerSlot != 1 || m.CollisionRate != 0.5 || m.DeliveryRate != 1 {
		t.Errorf("replayed metrics = %+v", m)
	}
	if s.FinalInformed != 4 || s.TotalNodes != 4 {
		t.Errorf("progress fold = %d/%d, want 4/4", s.FinalInformed, s.TotalNodes)
	}
	if s.Events[trace.KindChannel] != 2 || s.Events[trace.KindSlot] != 2 {
		t.Errorf("event counts = %v", s.Events)
	}
}

func TestSummarizeRejectsTruncation(t *testing.T) {
	var buf bytes.Buffer
	sink := trace.NewJSONL(&buf)
	sink.SetMeta(trace.Meta{})
	sink.Emit(trace.ChannelEvent(0, 0, -1, 0, 1))
	if _, err := trace.Summarize(&buf); err == nil {
		t.Error("trailing channel events accepted")
	}

	buf.Reset()
	sink = trace.NewJSONL(&buf)
	sink.SetMeta(trace.Meta{})
	sink.Emit(trace.ChannelEvent(0, 0, -1, 0, 1))
	sink.Emit(trace.SlotEvent(0, 2)) // claims 2 active channels, stream has 1
	if _, err := trace.Summarize(&buf); err == nil {
		t.Error("slot marker/stream mismatch accepted")
	}
}

func TestKindStrings(t *testing.T) {
	want := map[trace.Kind]string{
		trace.KindSlot: "slot", trace.KindChannel: "chan",
		trace.KindProgress: "progress", trace.KindInformed: "informed",
		trace.KindPhase: "phase", trace.KindCensus: "census",
		trace.KindFault: "fault", trace.KindJam: "jam",
		trace.KindTrial: "trial", trace.Kind(0): "invalid",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
}
