package trace_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/cogradio/crn/internal/assign"
	"github.com/cogradio/crn/internal/cogcast"
	"github.com/cogradio/crn/internal/metrics"
	"github.com/cogradio/crn/internal/sim"
	"github.com/cogradio/crn/internal/trace"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenRun is the fixed small COGCAST run behind the golden trace: every
// line of testdata/cogcast_small.jsonl comes from these parameters.
func goldenRun(sink trace.Sink, obs sim.Observer) (*cogcast.Result, error) {
	asn, err := assign.SharedCore(8, 4, 2, 12, assign.LocalLabels, 7)
	if err != nil {
		return nil, err
	}
	return cogcast.Run(asn, 0, "INIT", 7, cogcast.RunConfig{
		UntilAllInformed: true,
		Trace:            sink,
		Observer:         obs,
	})
}

// TestGoldenCogcastTrace pins the on-disk format end to end: a seeded run
// must reproduce testdata/cogcast_small.jsonl byte for byte. A diff here
// means either determinism broke or the schema changed — the latter is
// fine if intentional, but requires a TRACE.md update (and a version bump
// for renames/retypes) alongside `go test ./internal/trace -update`.
func TestGoldenCogcastTrace(t *testing.T) {
	var buf bytes.Buffer
	sink := trace.NewJSONL(&buf)
	sink.SetMeta(trace.Meta{
		Protocol: "cogcast", Nodes: 8, PerNode: 4, MinOverlap: 2,
		Channels: 12, Seed: 7, Collisions: sim.UniformWinner.String(),
	})
	if _, err := goldenRun(sink, nil); err != nil {
		t.Fatal(err)
	}
	if err := sink.Err(); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "cogcast_small.jsonl")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/trace -update` to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace differs from %s (re-run with -update if the schema change is intentional)\ngot:\n%swant:\n%s",
			golden, buf.Bytes(), want)
	}
}

// TestSummaryMatchesLiveCollector is the consistency check behind cogsim
// -trace-summary: folding a trace back through Summarize must reproduce
// exactly the Metrics a live collector attached to the same run reported.
func TestSummaryMatchesLiveCollector(t *testing.T) {
	col := &metrics.Collector{}
	var buf bytes.Buffer
	sink := trace.NewJSONL(&buf)
	sink.SetMeta(trace.Meta{Protocol: "cogcast", Nodes: 8, Seed: 7})
	if _, err := goldenRun(sink, col); err != nil {
		t.Fatal(err)
	}
	if err := sink.Err(); err != nil {
		t.Fatal(err)
	}

	s, err := trace.Summarize(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if s.Metrics != col.Snapshot() {
		t.Errorf("replayed metrics %+v differ from live collector %+v", s.Metrics, col.Snapshot())
	}
}

// TestTraceDoesNotChangeResults pins the package's core promise: attaching
// a sink must not perturb the run — same slots, same tree, same informed
// times as the untraced execution.
func TestTraceDoesNotChangeResults(t *testing.T) {
	plain, err := goldenRun(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	traced, err := goldenRun(trace.NewRing(64), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, traced) {
		t.Errorf("tracing changed the run:\nplain:  %+v\ntraced: %+v", plain, traced)
	}
}
