package adversary

import (
	"reflect"
	"testing"

	"github.com/cogradio/crn/internal/sim"
	"github.com/cogradio/crn/internal/trace"
)

// scripted is a test strategy that requests a fixed action every slot.
type scripted struct {
	jam   []int
	crash []sim.NodeID
}

func (*scripted) Name() string                      { return "scripted" }
func (*scripted) Reset(int64, int, int, Budget)     {}
func (*scripted) Observe(int, []sim.ChannelOutcome) {}
func (s *scripted) Plan(int) Action                 { return Action{Jam: s.jam, Crash: s.crash} }

type eventLog struct{ events []trace.Event }

func (l *eventLog) Emit(ev trace.Event) { l.events = append(l.events, ev) }

func TestRegistry(t *testing.T) {
	names := Strategies()
	want := []string{"none", "busiest", "follower", "hunter", "crasher", "oblivious"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("Strategies() = %v, want %v", names, want)
	}
	for _, name := range names {
		s, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if s.Name() != name {
			t.Errorf("New(%q).Name() = %q", name, s.Name())
		}
		if name != "none" && !CanJam(name) && !CanCrash(name) {
			t.Errorf("strategy %q has no weapon", name)
		}
	}
	if _, err := New("bogus"); err == nil {
		t.Fatal("New(bogus) succeeded")
	}
	if CanJam("crasher") || CanJam("oblivious") || CanJam("none") {
		t.Error("CanJam admits a crash-only or no-op strategy")
	}
	if CanCrash("busiest") || CanCrash("follower") || CanCrash("none") {
		t.Error("CanCrash admits a jam-only or no-op strategy")
	}
}

func TestNewDriverValidation(t *testing.T) {
	ok := Budget{PerSlot: 1, Total: 10}
	if _, err := NewDriver(nil, 4, 8, ok, 1); err == nil {
		t.Error("nil strategy accepted")
	}
	if _, err := NewDriver(&scripted{}, 0, 8, ok, 1); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := NewDriver(&scripted{}, 4, 0, ok, 1); err == nil {
		t.Error("c=0 accepted")
	}
	if _, err := NewDriver(&scripted{}, 4, 8, Budget{PerSlot: -1, Total: 10}, 1); err == nil {
		t.Error("negative per-slot budget accepted")
	}
	if _, err := NewDriver(&scripted{}, 4, 8, Budget{PerSlot: 1, Total: -1}, 1); err == nil {
		t.Error("negative total budget accepted")
	}
}

func TestActive(t *testing.T) {
	mk := func(strat Reactive, b Budget, wire func(*Driver)) bool {
		d, err := NewDriver(strat, 4, 8, b, 1)
		if err != nil {
			t.Fatal(err)
		}
		if wire != nil {
			wire(d)
		}
		return d.Active()
	}
	armed := Budget{PerSlot: 2, Total: 10}
	if mk(&scripted{}, armed, nil) {
		t.Error("driver with no weapon wired reports Active")
	}
	if mk(&scripted{}, Budget{PerSlot: 0, Total: 10}, func(d *Driver) { d.EnableJam(2) }) {
		t.Error("zero per-slot budget reports Active")
	}
	if mk(&scripted{}, Budget{PerSlot: 2, Total: 0}, func(d *Driver) { d.EnableJam(2) }) {
		t.Error("zero total budget reports Active")
	}
	if mk(&noop{}, armed, func(d *Driver) { d.EnableJam(2) }) {
		t.Error("no-op control reports Active")
	}
	if !mk(&scripted{}, armed, func(d *Driver) { d.EnableJam(2) }) {
		t.Error("armed jam driver reports inactive")
	}
	if !mk(&scripted{}, armed, func(d *Driver) { d.EnableCrash() }) {
		t.Error("armed crash driver reports inactive")
	}
}

// TestPlanSanitizing pins the driver's clamping contract: dedupe,
// range filtering, the per-slot cap, the jam cap, jam-first spending and
// protected nodes.
func TestPlanSanitizing(t *testing.T) {
	strat := &scripted{
		jam:   []int{5, 5, -1, 99, 3, 1, 2},
		crash: []sim.NodeID{0, 0, -3, 42, 2, 1},
	}
	d, err := NewDriver(strat, 4, 8, Budget{PerSlot: 4, Total: 100}, 7)
	if err != nil {
		t.Fatal(err)
	}
	d.EnableJam(2)
	d.EnableCrash(0) // protect node 0
	d.Reset()

	jam := d.Jammed(0, 0)
	if want := []int{5, 3}; !reflect.DeepEqual(jam, want) {
		t.Errorf("Jammed(0) = %v, want %v (dedupe, drop out-of-range, cap at kJam=2)", jam, want)
	}
	// Per-slot 4, 2 spent on jam, so 2 crash slots: node 0 is protected,
	// duplicates and out-of-range drop, leaving 2 then 1.
	for node, wantUp := range map[sim.NodeID]bool{0: true, 1: false, 2: false, 3: true} {
		if got := d.Up(node, 0); got != wantUp {
			t.Errorf("Up(%d, 0) = %v, want %v", node, got, wantUp)
		}
	}
	// Other slots are untouched: the plan only covers the current slot.
	if d.Jammed(1, 0) != nil {
		t.Error("Jammed(1) acted before slot 0 was observed")
	}
	if !d.Up(1, 1) {
		t.Error("Up(1, 1) acted before slot 0 was observed")
	}
}

func TestWeaponGating(t *testing.T) {
	strat := &scripted{jam: []int{1, 2}, crash: []sim.NodeID{1, 2}}

	jamOnly, err := NewDriver(strat, 4, 8, Budget{PerSlot: 4, Total: 100}, 7)
	if err != nil {
		t.Fatal(err)
	}
	jamOnly.EnableJam(3)
	jamOnly.Reset()
	if got := jamOnly.Jammed(0, 0); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Errorf("jam-only Jammed = %v", got)
	}
	if !jamOnly.Up(1, 0) {
		t.Error("jam-only driver crashed a node")
	}
	jamOnly.OnSlot(0, nil)
	if got := jamOnly.Ledger(); got.Spent != 2 || got.CrashSpent != 0 {
		t.Errorf("jam-only ledger charged crash energy: %+v", got)
	}

	crashOnly, err := NewDriver(strat, 4, 8, Budget{PerSlot: 4, Total: 100}, 7)
	if err != nil {
		t.Fatal(err)
	}
	crashOnly.EnableCrash()
	crashOnly.Reset()
	if got := crashOnly.Jammed(0, 0); got != nil {
		t.Errorf("crash-only driver jammed %v", got)
	}
	if crashOnly.Up(1, 0) || crashOnly.Up(2, 0) {
		t.Error("crash-only driver did not crash its targets")
	}
}

// TestExhaustion drives the reserve to zero mid-run and checks the
// adversary goes silent with the exhaustion slot recorded.
func TestExhaustion(t *testing.T) {
	strat := &scripted{jam: []int{0, 1}}
	d, err := NewDriver(strat, 4, 8, Budget{PerSlot: 2, Total: 5}, 7)
	if err != nil {
		t.Fatal(err)
	}
	d.EnableJam(3)
	d.Reset()

	// Slot 0: spend 2 (reserve 3). Slot 1: spend 2 (reserve 1).
	// Slot 2: clamp to 1 (reserve 0, exhausted). Slot 3+: silent.
	wantJams := [][]int{{0, 1}, {0, 1}, {0}, nil, nil}
	for slot, want := range wantJams {
		got := d.Jammed(slot, 0)
		if len(got) == 0 && len(want) == 0 {
			got, want = nil, nil
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("slot %d: Jammed = %v, want %v", slot, got, want)
		}
		d.OnSlot(slot, nil)
	}
	l := d.Ledger()
	if l.Spent != 5 || l.Remaining() != 0 {
		t.Errorf("ledger spent %d remaining %d, want 5/0", l.Spent, l.Remaining())
	}
	if l.ExhaustedAt != 2 {
		t.Errorf("ExhaustedAt = %d, want 2", l.ExhaustedAt)
	}
	if l.JamSpent != 5 || l.CrashSpent != 0 {
		t.Errorf("weapon split = jam %d crash %d, want 5/0", l.JamSpent, l.CrashSpent)
	}
}

// TestPerSlotCapAboveReserve: when PerSlot exceeds Total, the first plan
// is clamped to the whole reserve and the adversary exhausts in slot 0.
func TestPerSlotCapAboveReserve(t *testing.T) {
	strat := &scripted{jam: []int{0, 1, 2, 3, 4}}
	d, err := NewDriver(strat, 4, 16, Budget{PerSlot: 5, Total: 3}, 7)
	if err != nil {
		t.Fatal(err)
	}
	d.EnableJam(7)
	d.Reset()

	if got := d.Jammed(0, 0); !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Errorf("slot 0 Jammed = %v, want [0 1 2]", got)
	}
	d.OnSlot(0, nil)
	if got := d.Jammed(1, 0); got != nil {
		t.Errorf("slot 1 Jammed = %v after exhaustion", got)
	}
	l := d.Ledger()
	if l.ExhaustedAt != 0 || l.Spent != 3 {
		t.Errorf("ledger = %+v, want exhausted at slot 0 with 3 spent", l)
	}
}

// TestTraceLedgerChain checks the emitted KindAdv events form the chained
// ledger the invariant checker verifies: A = jam+crash, B = prevB - A,
// and silent slots emit nothing.
func TestTraceLedgerChain(t *testing.T) {
	strat := &scripted{jam: []int{0}, crash: []sim.NodeID{1}}
	d, err := NewDriver(strat, 4, 8, Budget{PerSlot: 2, Total: 5}, 7)
	if err != nil {
		t.Fatal(err)
	}
	d.EnableJam(2)
	d.EnableCrash()
	var log eventLog
	d.SetTrace(&log)
	d.Reset()

	for slot := 0; slot < 6; slot++ {
		d.OnSlot(slot, nil)
	}
	// Spend 2, 2, 1, then silence: three events.
	if len(log.events) != 3 {
		t.Fatalf("got %d adv events, want 3: %v", len(log.events), log.events)
	}
	rem := int64(5)
	for i, ev := range log.events {
		if ev.Kind != trace.KindAdv {
			t.Fatalf("event %d kind = %v", i, ev.Kind)
		}
		if ev.A != int64(ev.Channel+ev.Node) {
			t.Errorf("event %d: spent %d != jam %d + crash %d", i, ev.A, ev.Channel, ev.Node)
		}
		rem -= ev.A
		if ev.B != rem {
			t.Errorf("event %d: remaining %d, want %d", i, ev.B, rem)
		}
	}
	if rem != 0 {
		t.Errorf("final remaining %d, want 0", rem)
	}
}

// TestReplayDeterminism replays a synthetic observation history through
// every strategy twice and demands bit-identical plans — the contract
// that keeps sharded and parallel runs reproducible.
func TestReplayDeterminism(t *testing.T) {
	history := syntheticHistory(40, 8)
	for _, name := range Strategies() {
		plans := func() [][2]string {
			strat, err := New(name)
			if err != nil {
				t.Fatal(err)
			}
			d, err := NewDriver(strat, 10, 8, Budget{PerSlot: 3, Total: 50}, 99)
			if err != nil {
				t.Fatal(err)
			}
			d.EnableJam(3)
			d.EnableCrash(0)
			d.Reset()
			var out [][2]string
			for slot, outcomes := range history {
				jam := append([]int(nil), d.Jammed(slot, 0)...)
				var down []sim.NodeID
				for u := 0; u < 10; u++ {
					if !d.Up(sim.NodeID(u), slot) {
						down = append(down, sim.NodeID(u))
					}
				}
				out = append(out, [2]string{str(jam), strn(down)})
				d.OnSlot(slot, outcomes)
			}
			return out
		}
		a, b := plans(), plans()
		if !reflect.DeepEqual(a, b) {
			t.Errorf("strategy %q: replay diverged", name)
		}
	}
}

// TestBudgetNeverExceeded drives every strategy through a synthetic
// history and checks the per-slot cap, jam cap, channel range and total
// reserve hold in every slot — the property the fuzz target extends.
func TestBudgetNeverExceeded(t *testing.T) {
	const n, c, perSlot, total, kJam = 10, 8, 3, 17, 2
	history := syntheticHistory(60, c)
	for _, name := range Strategies() {
		strat, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		d, err := NewDriver(strat, n, c, Budget{PerSlot: perSlot, Total: total}, 5)
		if err != nil {
			t.Fatal(err)
		}
		d.EnableJam(kJam)
		d.EnableCrash(0)
		d.Reset()
		spent := 0
		for slot, outcomes := range history {
			jam := d.Jammed(slot, 0)
			if len(jam) > kJam {
				t.Fatalf("%q slot %d: %d jams > kJam %d", name, slot, len(jam), kJam)
			}
			seen := map[int]bool{}
			for _, ch := range jam {
				if ch < 0 || ch >= c {
					t.Fatalf("%q slot %d: jam channel %d out of range", name, slot, ch)
				}
				if seen[ch] {
					t.Fatalf("%q slot %d: duplicate jam channel %d", name, slot, ch)
				}
				seen[ch] = true
			}
			down := 0
			for u := 0; u < n; u++ {
				if !d.Up(sim.NodeID(u), slot) {
					down++
				}
			}
			if !d.Up(0, slot) {
				t.Fatalf("%q slot %d: protected node 0 crashed", name, slot)
			}
			acts := len(jam) + down
			if acts > perSlot {
				t.Fatalf("%q slot %d: %d actions > per-slot %d", name, slot, acts, perSlot)
			}
			spent += acts
			d.OnSlot(slot, outcomes)
			if got := d.Ledger().Spent; got != spent {
				t.Fatalf("%q slot %d: ledger spent %d, observed %d", name, slot, got, spent)
			}
		}
		if spent > total {
			t.Fatalf("%q: spent %d > total %d", name, spent, total)
		}
	}
}

// TestHunterFindsMediator: a node that wins the same channel repeatedly
// is targeted on both lists; churn is not.
func TestHunterFindsMediator(t *testing.T) {
	strat, err := New("hunter")
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDriver(strat, 8, 4, Budget{PerSlot: 4, Total: 100}, 3)
	if err != nil {
		t.Fatal(err)
	}
	d.EnableJam(1)
	d.EnableCrash()
	d.Reset()

	// Channel 2 delivers node 5 twice (a mediator); channel 0 churns.
	win := func(ch int, w sim.NodeID) sim.ChannelOutcome {
		return sim.ChannelOutcome{Channel: ch, Broadcasters: []sim.NodeID{w}, Winner: w}
	}
	d.OnSlot(0, []sim.ChannelOutcome{win(0, 1), win(2, 5)})
	d.OnSlot(1, []sim.ChannelOutcome{win(0, 2), win(2, 5)})
	if got := d.Jammed(2, 0); !reflect.DeepEqual(got, []int{2}) {
		t.Errorf("hunter jammed %v, want [2]", got)
	}
	if d.Up(5, 2) {
		t.Error("hunter left the mediator up")
	}
	if !d.Up(1, 2) || !d.Up(2, 2) {
		t.Error("hunter crashed a churning winner")
	}
	// An idle channel keeps its streak; an active undelivered one resets.
	d.OnSlot(2, nil)
	if d.Up(5, 3) {
		t.Error("idle slot dropped the mediator's streak")
	}
	d.OnSlot(3, []sim.ChannelOutcome{{Channel: 2, Broadcasters: []sim.NodeID{5, 6}, Winner: sim.None}})
	if !d.Up(5, 4) {
		t.Error("collision did not reset the mediator's streak")
	}
}

// TestObliviousWindows: the oblivious control redraws its victim set only
// at window boundaries and is a pure function of (seed, window).
func TestObliviousWindows(t *testing.T) {
	strat, err := New("oblivious")
	if err != nil {
		t.Fatal(err)
	}
	strat.Reset(11, 20, 8, Budget{PerSlot: 3, Total: 1000})
	first := str(crashInts(strat.Plan(0)))
	for slot := 1; slot < obliviousDuration; slot++ {
		if got := str(crashInts(strat.Plan(slot))); got != first {
			t.Fatalf("slot %d redrew within the window: %s vs %s", slot, got, first)
		}
	}
	next := str(crashInts(strat.Plan(obliviousDuration)))
	if next == first {
		t.Logf("windows 0 and 1 drew the same set (possible, just unlikely)")
	}
	strat.Reset(11, 20, 8, Budget{PerSlot: 3, Total: 1000})
	if got := str(crashInts(strat.Plan(0))); got != first {
		t.Errorf("reset changed window 0: %s vs %s", got, first)
	}
}

func crashInts(a Action) []int {
	out := make([]int, 0, len(a.Crash))
	for _, id := range a.Crash {
		out = append(out, int(id))
	}
	return out
}

// syntheticHistory builds a deterministic per-slot outcome history with
// varying traffic shape so every strategy's detection logic gets exercised.
func syntheticHistory(slots, c int) [][]sim.ChannelOutcome {
	history := make([][]sim.ChannelOutcome, slots)
	for slot := 0; slot < slots; slot++ {
		// Traffic ramps, collapses, and ramps again to trip the crasher's
		// boundary detector; winners repeat to trip the hunter's streaks.
		active := (slot % 7) + 1
		if active > c {
			active = c
		}
		var outs []sim.ChannelOutcome
		for ch := 0; ch < active; ch++ {
			w := sim.NodeID((ch + slot/5) % 10)
			out := sim.ChannelOutcome{
				Channel:      ch,
				Broadcasters: []sim.NodeID{w, (w + 1) % 10},
				Winner:       w,
				Listeners:    []sim.NodeID{(w + 2) % 10},
			}
			if slot%11 == ch {
				out.Winner = sim.None
			}
			outs = append(outs, out)
		}
		history[slot] = outs
	}
	return history
}

func str(v []int) string {
	s := "["
	for _, x := range v {
		s += " " + itoa(x)
	}
	return s + " ]"
}

func strn(v []sim.NodeID) string {
	s := "["
	for _, x := range v {
		s += " " + itoa(int(x))
	}
	return s + " ]"
}

func itoa(x int) string {
	if x < 0 {
		return "-" + itoa(-x)
	}
	if x < 10 {
		return string(rune('0' + x))
	}
	return itoa(x/10) + string(rune('0'+x%10))
}
