package adversary

import (
	"fmt"
	"sort"

	"github.com/cogradio/crn/internal/rng"
	"github.com/cogradio/crn/internal/sim"
)

// Strategies returns the names of the built-in strategy population, in
// registry order: the no-op control, the reactive jammers, and the crash
// adversaries.
func Strategies() []string {
	return []string{"none", "busiest", "follower", "hunter", "crasher", "oblivious"}
}

// New builds a fresh strategy by name:
//
//	none      no-op control (never acts; the unjammed baseline arm)
//	busiest   jam the channels that carried the most broadcasters last slot
//	follower  jam the channels that last delivered a message
//	hunter    find channels dominated by one repeat winner — COGCOMP's
//	          elected mediators — then jam those channels and crash those
//	          winners (whichever weapon the run wires)
//	crasher   detect phase boundaries from sharp shifts in global traffic
//	          and burst-crash the recent winners — the recovery
//	          supervisor's worst case
//	oblivious observation-blind random crash-restarts paced to the same
//	          budget (the E26-style control the crasher is measured
//	          against at equal energy)
//
// Each strategy is deterministic given (seed, budget, observed history).
func New(name string) (Reactive, error) {
	return newStrategy(name)
}

// CanJam reports whether the named built-in strategy ever requests jam
// actions (so a jam-only run can reject crash-only strategies up front).
func CanJam(name string) bool {
	switch name {
	case "busiest", "follower", "hunter":
		return true
	}
	return false
}

// CanCrash reports whether the named built-in strategy ever requests
// crash actions.
func CanCrash(name string) bool {
	switch name {
	case "hunter", "crasher", "oblivious":
		return true
	}
	return false
}

func newStrategy(name string) (Reactive, error) {
	switch name {
	case "none":
		return &noop{}, nil
	case "busiest":
		return &busiest{}, nil
	case "follower":
		return &follower{}, nil
	case "hunter":
		return &hunter{}, nil
	case "crasher":
		return &crasher{}, nil
	case "oblivious":
		return &oblivious{}, nil
	default:
		return nil, fmt.Errorf("adversary: unknown strategy %q (want one of %v)", name, Strategies())
	}
}

// --- none -----------------------------------------------------------------

type noop struct{}

func (*noop) Name() string                      { return "none" }
func (*noop) Reset(int64, int, int, Budget)     {}
func (*noop) Observe(int, []sim.ChannelOutcome) {}
func (*noop) Plan(int) Action                   { return Action{} }

// --- busiest --------------------------------------------------------------

// busiest jams the channels that carried the most broadcasters in the
// previous slot, densest first: the epidemic's hottest spectrum is where
// the next deliveries are most likely.
type busiest struct {
	counts []int
	active []int
}

func (*busiest) Name() string { return "busiest" }

func (b *busiest) Reset(_ int64, _, c int, _ Budget) {
	b.counts = make([]int, c)
	b.active = b.active[:0]
}

func (b *busiest) Observe(_ int, outcomes []sim.ChannelOutcome) {
	for _, ch := range b.active {
		b.counts[ch] = 0
	}
	b.active = b.active[:0]
	for _, out := range outcomes {
		if len(out.Broadcasters) > 0 && out.Channel < len(b.counts) {
			b.counts[out.Channel] = len(out.Broadcasters)
			b.active = append(b.active, out.Channel)
		}
	}
	sortByScoreDesc(b.active, func(ch int) int { return b.counts[ch] })
}

func (b *busiest) Plan(int) Action { return Action{Jam: b.active} }

// --- follower -------------------------------------------------------------

// follower jams the channels that delivered a message in the previous
// slot, largest audience first: a successful channel is one the protocol
// has converged on and will retry.
type follower struct {
	audience []int
	hits     []int
}

func (*follower) Name() string { return "follower" }

func (f *follower) Reset(_ int64, _, c int, _ Budget) {
	f.audience = make([]int, c)
	f.hits = f.hits[:0]
}

func (f *follower) Observe(_ int, outcomes []sim.ChannelOutcome) {
	for _, ch := range f.hits {
		f.audience[ch] = 0
	}
	f.hits = f.hits[:0]
	for _, out := range outcomes {
		if out.Winner != sim.None && out.Channel < len(f.audience) {
			f.audience[out.Channel] = len(out.Listeners) + 1
			f.hits = append(f.hits, out.Channel)
		}
	}
	sortByScoreDesc(f.hits, func(ch int) int { return f.audience[ch] })
}

func (f *follower) Plan(int) Action { return Action{Jam: f.hits} }

// --- hunter ---------------------------------------------------------------

// hunterStreak is how many consecutive wins on one channel mark its
// winner as a mediator (COGCOMP mediators win their census channel slot
// after slot; epidemic traffic churns winners).
const hunterStreak = 2

// hunter tracks, per channel, the current winner and its winning streak.
// A channel whose winner repeated hunterStreak times is treated as
// mediated: the channel goes on the jam list and its winner on the crash
// list, longest streak first. Which list bites depends on the run's
// wired weapon — jamming starves the mediator's audience (COGCAST /
// census traffic), crashing kills the mediator itself and forces the
// recovery supervisor to re-elect.
type hunter struct {
	winner []sim.NodeID
	streak []int
	chans  []int
	nodes  []int
}

func (*hunter) Name() string { return "hunter" }

func (h *hunter) Reset(_ int64, _, c int, _ Budget) {
	h.winner = make([]sim.NodeID, c)
	h.streak = make([]int, c)
	for ch := range h.winner {
		h.winner[ch] = sim.None
	}
	h.chans = h.chans[:0]
	h.nodes = h.nodes[:0]
}

func (h *hunter) Observe(_ int, outcomes []sim.ChannelOutcome) {
	for _, out := range outcomes {
		if out.Channel >= len(h.streak) {
			continue
		}
		switch {
		case out.Winner == sim.None:
			// Active but undelivered: the dominance is broken.
			h.winner[out.Channel] = sim.None
			h.streak[out.Channel] = 0
		case out.Winner == h.winner[out.Channel]:
			h.streak[out.Channel]++
		default:
			h.winner[out.Channel] = out.Winner
			h.streak[out.Channel] = 1
		}
	}
	// Idle channels keep their streaks: a mediator that pauses between
	// census rounds is still the same mediator.
	h.chans = h.chans[:0]
	for ch, s := range h.streak {
		if s >= hunterStreak {
			h.chans = append(h.chans, ch)
		}
	}
	sortByScoreDesc(h.chans, func(ch int) int { return h.streak[ch] })
	h.nodes = h.nodes[:0]
	for _, ch := range h.chans {
		h.nodes = append(h.nodes, int(h.winner[ch]))
	}
}

func (h *hunter) Plan(int) Action {
	act := Action{Jam: h.chans}
	for _, id := range h.nodes {
		act.Crash = append(act.Crash, sim.NodeID(id))
	}
	return act
}

// --- crasher --------------------------------------------------------------

const (
	// crasherHold is how many slots a detected boundary keeps the burst
	// armed — long enough to straddle a checkpoint window.
	crasherHold = 16
	// crasherWindow is the sliding window, in slots, over which winners
	// are ranked as crash targets.
	crasherWindow = 32
	// crasherWarmup skips detection during the opening slots, where
	// traffic ramps from nothing and every delta looks like a boundary.
	crasherWarmup = 4
)

// crasher watches the global broadcast count per slot and treats a sharp
// shift — traffic halving or doubling between consecutive slots — as a
// phase boundary (COGCOMP's epochs have distinct traffic signatures:
// the epidemic storm, the census trickle, the convergecast). At each
// detected boundary it arms a crasherHold-slot burst that holds down the
// nodes that won the most deliveries in the recent window — the nodes
// mid-checkpoint whose loss the recovery supervisor must repair.
type crasher struct {
	n         int
	prev      int
	seen      int
	burstLeft int
	wins      []int
	recent    []sim.NodeID
	targets   []int
}

func (*crasher) Name() string { return "crasher" }

func (c *crasher) Reset(_ int64, n, _ int, _ Budget) {
	c.n = n
	c.prev = 0
	c.seen = 0
	c.burstLeft = 0
	c.wins = make([]int, n)
	c.recent = c.recent[:0]
	c.targets = c.targets[:0]
}

func (c *crasher) Observe(_ int, outcomes []sim.ChannelOutcome) {
	cur := 0
	for _, out := range outcomes {
		cur += len(out.Broadcasters)
		if out.Winner != sim.None && int(out.Winner) < c.n {
			c.wins[out.Winner]++
			c.recent = append(c.recent, out.Winner)
		}
	}
	// Age the window.
	for len(c.recent) > crasherWindow {
		c.wins[c.recent[0]]--
		c.recent = c.recent[1:]
	}
	c.seen++
	if c.seen > crasherWarmup {
		delta := cur - c.prev
		if delta < 0 {
			delta = -delta
		}
		big := c.prev / 2
		if big < 2 {
			big = 2
		}
		if delta >= big {
			c.burstLeft = crasherHold
		}
	}
	c.prev = cur
	if c.burstLeft > 0 {
		c.burstLeft--
		c.targets = c.targets[:0]
		for id, w := range c.wins {
			if w > 0 {
				c.targets = append(c.targets, id)
			}
		}
		sortByScoreDesc(c.targets, func(id int) int { return c.wins[id] })
	} else {
		c.targets = c.targets[:0]
	}
}

func (c *crasher) Plan(int) Action {
	var act Action
	for _, id := range c.targets {
		act.Crash = append(act.Crash, sim.NodeID(id))
	}
	return act
}

// --- oblivious ------------------------------------------------------------

// obliviousDuration is the outage length, matching E26's default.
const obliviousDuration = 10

// oblivious ignores its observations entirely: it schedules E26-style
// random crash-restart outages — a fresh uniformly drawn node set per
// obliviousDuration-slot window, sized to the per-slot budget — through
// the same driver and ledger as the reactive strategies. It is the
// equal-energy control the phase-boundary crasher is compared against.
type oblivious struct {
	seed    int64
	n       int
	perSlot int
	window  int
	picks   []sim.NodeID
}

func (*oblivious) Name() string { return "oblivious" }

func (o *oblivious) Reset(seed int64, n, _ int, budget Budget) {
	o.seed = seed
	o.n = n
	o.perSlot = budget.PerSlot
	o.window = -1
	o.picks = o.picks[:0]
}

func (o *oblivious) Observe(int, []sim.ChannelOutcome) {}

func (o *oblivious) Plan(slot int) Action {
	w := slot / obliviousDuration
	if w != o.window {
		o.window = w
		o.picks = o.picks[:0]
		want := o.perSlot
		if want > o.n {
			want = o.n
		}
		r := rng.New(o.seed, int64(w), 0x0b11)
		for _, id := range r.Perm(o.n)[:want] {
			o.picks = append(o.picks, sim.NodeID(id))
		}
		sort.Slice(o.picks, func(i, j int) bool { return o.picks[i] < o.picks[j] })
	}
	return Action{Crash: o.picks}
}
