// Package adversary implements reactive (adaptive) adversaries for the
// cognitive radio model: attackers that observe every slot's channel
// outcomes through the engine's sim.Observer hook and decide the *next*
// slot's jamming and crash actions from what they saw — the adaptive
// worst case behind the paper's Section 6 lower-bound games and Section 7
// discussion, which the repo's oblivious jammers and fault schedules
// never exercised.
//
// The model has three parts:
//
//   - A Reactive strategy turns observation history into desired actions.
//     Strategies are pure automata: deterministic functions of
//     (seed, budget, observed history), so runs stay reproducible at any
//     -parallel or -shards setting.
//   - A Budget bounds the attacker's power: a per-slot action cap and a
//     total energy reserve. Energy is charged per scheduled action-slot —
//     one unit per jammed physical channel per slot, one unit per node
//     held down per slot — the way a physical interferer burns transmit
//     power whether or not a victim happens to listen. When the reserve
//     runs out the adversary goes silent for the rest of the run.
//   - A Driver enforces the budget around a strategy and adapts it to the
//     simulator's existing attack surfaces: it is a sim.Observer (fed the
//     per-slot outcomes), a jamming.Jammer (its jam plan feeds the
//     Theorem 18 reduction unchanged), and a faults.Schedule (its crash
//     plan feeds the recovery supervisor's Crasher wrapping unchanged).
//
// The driver plans eagerly: while observing slot t (on the engine's
// goroutine, after all protocol steps resolved) it computes the budgeted
// action for slot t+1. During slot t+1 the plan is only *read* —
// Jammed and Up mutate nothing — so a sharded engine scan may consult the
// schedule concurrently without races, and replaying the same observation
// history reproduces the same actions bit-for-bit.
package adversary

import (
	"fmt"
	"sort"

	"github.com/cogradio/crn/internal/sim"
	"github.com/cogradio/crn/internal/trace"
)

// Budget bounds an adversary's power.
type Budget struct {
	// PerSlot caps the actions scheduled in any one slot (jammed channels
	// plus nodes held down).
	PerSlot int
	// Total is the energy reserve for the whole run: every scheduled
	// action-slot costs one unit. Zero or negative means the adversary is
	// inert (callers should not even wire it — see Driver.Active).
	Total int
}

// Ledger is the budget accounting of one run, reported in results and
// mirrored into the trace stream (trace.KindAdv).
type Ledger struct {
	// PerSlot and Total echo the budget the run was bounded by.
	PerSlot, Total int
	// Spent is the total energy charged; JamSpent and CrashSpent split it
	// by weapon.
	Spent, JamSpent, CrashSpent int
	// ExhaustedAt is the slot in which the reserve hit zero, or -1 if the
	// run ended with energy to spare.
	ExhaustedAt int
}

// Remaining returns the unspent reserve.
func (l Ledger) Remaining() int { return l.Total - l.Spent }

// Action is what a strategy wants to do in one slot, before budgeting:
// jam the listed physical channels (for every node — the n-uniform
// reduction) and hold the listed nodes down. Both lists are priority
// ordered; the driver keeps prefixes when the budget or the weapon caps
// bind. Strategies may request either weapon; the driver silently drops
// actions for weapons the run has not wired (a jam-only COGCAST run
// ignores crash requests and vice versa), so one strategy can carry both
// a jamming and a crashing interpretation.
type Action struct {
	Jam   []int
	Crash []sim.NodeID
}

// Reactive is an adaptive adversary strategy. Implementations must be
// deterministic functions of (seed, budget, observations) and are driven
// from a single goroutine; the driver guarantees the call order
//
//	Reset, Plan(0), [Observe(0), Plan(1)], [Observe(1), Plan(2)], ...
//
// Observe's outcome slices alias engine scratch and must not be retained
// across the call.
type Reactive interface {
	// Name identifies the strategy in reports and registries.
	Name() string
	// Reset re-arms the strategy for a run over n nodes and c physical
	// channels under the given budget.
	Reset(seed int64, n, c int, budget Budget)
	// Observe feeds one resolved slot's channel outcomes.
	Observe(slot int, outcomes []sim.ChannelOutcome)
	// Plan returns the desired (pre-budget) action for the given slot.
	Plan(slot int) Action
}

// Driver wraps a Reactive strategy with budget enforcement and adapts it
// to the simulator: it is a sim.Observer, a jamming.Jammer and a
// faults.Schedule at once. Wire only the weapons the run supports
// (EnableJam for the Theorem 18 reduction, EnableCrash for the recovery
// supervisor) and always attach the driver as an observer — planning
// happens in OnSlot, so an unattached driver never acts after slot 0.
//
// A Driver is single-run state; call Reset before each run.
type Driver struct {
	strat  Reactive
	budget Budget
	seed   int64
	n, c   int

	jamEnabled bool
	jamCap     int
	crashOn    bool
	protect    map[sim.NodeID]bool

	ledger    Ledger
	planSlot  int
	planJam   []int
	planCrash []sim.NodeID
	crashSet  []bool
	jamSeen   map[int]bool

	sink trace.Sink
}

var _ sim.Observer = (*Driver)(nil)

// NewDriver builds a driver for a strategy over n nodes and c physical
// channels. The returned driver has no weapons wired; call EnableJam
// and/or EnableCrash, then Reset.
func NewDriver(strat Reactive, n, c int, budget Budget, seed int64) (*Driver, error) {
	if strat == nil {
		return nil, fmt.Errorf("adversary: nil strategy")
	}
	if n < 1 || c < 1 {
		return nil, fmt.Errorf("adversary: need n >= 1 and c >= 1, got n=%d c=%d", n, c)
	}
	if budget.PerSlot < 0 || budget.Total < 0 {
		return nil, fmt.Errorf("adversary: negative budget (per-slot %d, total %d)", budget.PerSlot, budget.Total)
	}
	d := &Driver{
		strat:    strat,
		budget:   budget,
		seed:     seed,
		n:        n,
		c:        c,
		crashSet: make([]bool, n),
		jamSeen:  make(map[int]bool, c),
	}
	d.Reset()
	return d, nil
}

// EnableJam wires the jamming weapon: jam plans are capped at kJam
// channels per slot (the Theorem 18 reduction's per-node budget, which
// must stay below c/2 — validated by jamming.NewAssignment, not here).
func (d *Driver) EnableJam(kJam int) {
	d.jamEnabled = true
	d.jamCap = kJam
	d.replan()
}

// EnableCrash wires the crash weapon; the listed nodes (typically the
// source) are protected and never held down.
func (d *Driver) EnableCrash(protect ...sim.NodeID) {
	d.crashOn = true
	if d.protect == nil {
		d.protect = make(map[sim.NodeID]bool, len(protect))
	}
	for _, id := range protect {
		d.protect[id] = true
	}
	d.replan()
}

// Active reports whether the driver can ever act: a positive budget, a
// wired weapon, and a strategy that is not the no-op control. Inactive
// drivers should not be wired into a run at all — that is what keeps the
// zero-energy arm byte-for-byte identical to the unjammed control.
func (d *Driver) Active() bool {
	return d.budget.Total > 0 && d.budget.PerSlot > 0 && (d.jamEnabled || d.crashOn) && d.strat.Name() != "none"
}

// Reset re-arms the driver and its strategy for a fresh run.
func (d *Driver) Reset() {
	d.ledger = Ledger{PerSlot: d.budget.PerSlot, Total: d.budget.Total, ExhaustedAt: -1}
	d.strat.Reset(d.seed, d.n, d.c, d.budget)
	d.planSlot = 0
	d.replan()
}

// SetTrace attaches (or, with nil, detaches) a sink receiving one
// trace.KindAdv event per slot in which the adversary spent energy.
func (d *Driver) SetTrace(sink trace.Sink) { d.sink = sink }

// Ledger returns the run's budget accounting so far.
func (d *Driver) Ledger() Ledger { return d.ledger }

// Name implements jamming.Jammer and faults.Schedule.
func (d *Driver) Name() string { return d.strat.Name() }

// Jammed implements jamming.Jammer: the planned jam set for the current
// slot, identical for every node (n-uniform). It mutates nothing, so the
// jamming assignment may call it freely while materializing a slot.
func (d *Driver) Jammed(slot int, _ sim.NodeID) []int {
	if !d.jamEnabled || slot != d.planSlot || len(d.planJam) == 0 {
		return nil
	}
	return d.planJam
}

// Up implements faults.Schedule: a node is down while it is in the
// current slot's crash plan. It mutates nothing, so a sharded engine scan
// may consult it concurrently for distinct nodes.
func (d *Driver) Up(node sim.NodeID, slot int) bool {
	if !d.crashOn || slot != d.planSlot {
		return true
	}
	return !d.crashSet[node]
}

// OnSlot implements sim.Observer: charge the slot's plan to the ledger,
// mirror it into the trace, feed the outcomes to the strategy, and plan
// the next slot. The engine calls it once per slot after all protocol
// steps and deliveries resolved, on the engine goroutine.
func (d *Driver) OnSlot(slot int, outcomes []sim.ChannelOutcome) {
	if slot == d.planSlot {
		jamCost := len(d.planJam)
		crashCost := len(d.planCrash)
		spent := jamCost + crashCost
		d.ledger.Spent += spent
		d.ledger.JamSpent += jamCost
		d.ledger.CrashSpent += crashCost
		if d.ledger.Remaining() <= 0 && d.ledger.ExhaustedAt < 0 {
			d.ledger.ExhaustedAt = slot
		}
		if d.sink != nil && spent > 0 {
			d.sink.Emit(trace.AdvEvent(slot, jamCost, crashCost, spent, d.ledger.Remaining()))
		}
	}
	d.strat.Observe(slot, outcomes)
	d.planSlot = slot + 1
	d.replan()
}

// replan computes the budgeted plan for d.planSlot: sanitize the
// strategy's request (drop disabled weapons, out-of-range targets,
// protected nodes and duplicates), cap jams at the reduction budget, and
// spend the per-slot allowance jam-first in the strategy's priority
// order.
func (d *Driver) replan() {
	for _, id := range d.planCrash {
		d.crashSet[id] = false
	}
	d.planJam = d.planJam[:0]
	d.planCrash = d.planCrash[:0]

	limit := d.ledger.PerSlot
	if rem := d.ledger.Remaining(); rem < limit {
		limit = rem
	}
	if limit <= 0 || (!d.jamEnabled && !d.crashOn) {
		return
	}
	want := d.strat.Plan(d.planSlot)

	if d.jamEnabled {
		for k := range d.jamSeen {
			delete(d.jamSeen, k)
		}
		for _, ch := range want.Jam {
			if len(d.planJam) >= d.jamCap || len(d.planJam) >= limit {
				break
			}
			if ch < 0 || ch >= d.c || d.jamSeen[ch] {
				continue
			}
			d.jamSeen[ch] = true
			d.planJam = append(d.planJam, ch)
		}
		limit -= len(d.planJam)
	}
	if d.crashOn {
		for _, id := range want.Crash {
			if len(d.planCrash) >= limit {
				break
			}
			if id < 0 || int(id) >= d.n || d.protect[id] || d.crashSet[id] {
				continue
			}
			d.crashSet[id] = true
			d.planCrash = append(d.planCrash, id)
		}
	}
}

// sortByScoreDesc orders items by descending score, breaking ties on the
// smaller item — the canonical deterministic priority order strategies
// use for their target lists.
func sortByScoreDesc(items []int, score func(int) int) {
	sort.Slice(items, func(i, j int) bool {
		si, sj := score(items[i]), score(items[j])
		if si != sj {
			return si > sj
		}
		return items[i] < items[j]
	})
}
