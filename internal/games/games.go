// Package games implements the hitting games behind the paper's lower
// bounds (Section 6).
//
// In the (c,k)-bipartite hitting game a referee privately selects a
// k-matching M in the complete bipartite graph on (A, B), |A| = |B| = c; a
// player proposes one edge per round and wins on proposing an edge of M.
// Lemma 11 shows no player wins within c²/(αk) rounds with probability 1/2
// (α = 2(β/(β−1))², k ≤ c/β). With k = c the game becomes the c-complete
// bipartite hitting game of Lemma 14, whose bound is c/3 rounds.
//
// Lemma 12's reduction converts any local-label broadcast algorithm into a
// player that spends at most min{c,n} proposals per simulated slot, which
// transfers the game bounds to local broadcast (Theorem 15). The package
// implements the games, reference players, and the reduction, so all three
// lemmas can be checked empirically.
package games

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/cogradio/crn/internal/rng"
)

// Edge is a proposal (a_i, b_j), 0-indexed into the bipartition sides.
type Edge struct {
	A, B int
}

// Player proposes one edge per round. Implementations may be arbitrary
// probabilistic automata; they receive no feedback other than the game
// ending (per the game definition — a lost proposal reveals only that the
// game continues).
type Player interface {
	// Name identifies the player in reports.
	Name() string
	// Propose returns the player's proposal for the given round.
	Propose(round int) Edge
}

// Game is one instance of the (c,k)-bipartite hitting game with the
// referee's matching already drawn.
type Game struct {
	c, k     int
	matching map[int]int // a -> b for the k matched pairs
}

// NewGame draws a referee matching of size k uniformly at random: the
// referee picks each edge with uniform independent randomness, removing
// used endpoints (exactly the referee of Lemma 11's proof). k = c yields
// the c-complete bipartite hitting game.
func NewGame(c, k int, seed int64) (*Game, error) {
	if c < 1 || k < 1 || k > c {
		return nil, fmt.Errorf("games: invalid parameters c=%d k=%d", c, k)
	}
	r := rng.New(seed, int64(c), int64(k), 0x6a3e)
	as := r.Perm(c)[:k]
	bs := r.Perm(c)[:k]
	m := make(map[int]int, k)
	for i := 0; i < k; i++ {
		m[as[i]] = bs[i]
	}
	return &Game{c: c, k: k, matching: m}, nil
}

// C returns the side size of the bipartition.
func (g *Game) C() int { return g.c }

// K returns the matching size.
func (g *Game) K() int { return g.k }

// Hit reports whether e is in the referee's matching.
func (g *Game) Hit(e Edge) bool {
	b, ok := g.matching[e.A]
	return ok && b == e.B
}

// Play runs the player for at most maxRounds proposals and returns whether
// it won and how many proposals it used (the winning proposal included).
func (g *Game) Play(p Player, maxRounds int) (won bool, rounds int) {
	for round := 0; round < maxRounds; round++ {
		e := p.Propose(round)
		if g.Hit(e) {
			return true, round + 1
		}
	}
	return false, maxRounds
}

// LowerBoundRounds returns Lemma 11's bound c²/(αk) with α = 2(β/(β−1))²
// for β = c/k: the number of rounds within which no player wins with
// probability 1/2 (valid for k ≤ c/2, i.e. β ≥ 2).
func LowerBoundRounds(c, k int) int {
	beta := float64(c) / float64(k)
	alpha := 2 * (beta / (beta - 1)) * (beta / (beta - 1))
	return int(math.Floor(float64(c) * float64(c) / (alpha * float64(k))))
}

// CompleteLowerBoundRounds returns Lemma 14's bound c/3 for the c-complete
// bipartite hitting game.
func CompleteLowerBoundRounds(c int) int { return c / 3 }

// --- Reference players ---------------------------------------------------------

// UniformPlayer proposes an independent uniform edge every round.
type UniformPlayer struct {
	c    int
	rand *rand.Rand
}

var _ Player = (*UniformPlayer)(nil)

// NewUniformPlayer builds a uniform random player over side size c.
func NewUniformPlayer(c int, seed int64) *UniformPlayer {
	return &UniformPlayer{c: c, rand: rng.New(seed, 0x0091)}
}

// Name implements Player.
func (*UniformPlayer) Name() string { return "uniform" }

// Propose implements Player.
func (p *UniformPlayer) Propose(int) Edge {
	return Edge{A: p.rand.Intn(p.c), B: p.rand.Intn(p.c)}
}

// NonRepeatingPlayer proposes the c² edges in a uniformly random order,
// never repeating a proposal — with no feedback available, this dominates
// every memoryless strategy and is the natural "best effort" player.
type NonRepeatingPlayer struct {
	c     int
	order []int
}

var _ Player = (*NonRepeatingPlayer)(nil)

// NewNonRepeatingPlayer builds a non-repeating player over side size c.
func NewNonRepeatingPlayer(c int, seed int64) *NonRepeatingPlayer {
	return &NonRepeatingPlayer{c: c, order: rng.New(seed, 0x0092).Perm(c * c)}
}

// Name implements Player.
func (*NonRepeatingPlayer) Name() string { return "non-repeating" }

// Propose implements Player.
func (p *NonRepeatingPlayer) Propose(round int) Edge {
	if round >= len(p.order) {
		round = len(p.order) - 1 // every edge already tried; repeat the last
	}
	e := p.order[round]
	return Edge{A: e / p.c, B: e % p.c}
}

// --- The Lemma 12 reduction ------------------------------------------------------

// ChannelChooser supplies the per-slot channel choices of a simulated
// local-label broadcast algorithm in the two-set network of Lemma 12's
// proof: the source holds channel set A, the other n−1 nodes all hold
// channel set B, and no progress is possible until the source and some
// other node land on a matched pair. Since nothing is ever received before
// that moment, the algorithm's behavior is a deterministic or randomized
// function of the slot alone.
type ChannelChooser interface {
	// Choose returns the source's local channel and each non-source node's
	// local channel for the given simulated slot. The returned slice is
	// only read before the next call.
	Choose(slot int) (source int, others []int)
	// Channels returns c, the channel-set size the choices range over.
	Channels() int
}

// CogcastChooser is COGCAST's chooser: everyone hops uniformly at random.
type CogcastChooser struct {
	c      int
	rand   *rand.Rand
	others []int
}

var _ ChannelChooser = (*CogcastChooser)(nil)

// NewCogcastChooser builds the chooser for n nodes over c channels.
func NewCogcastChooser(n, c int, seed int64) *CogcastChooser {
	return &CogcastChooser{c: c, rand: rng.New(seed, 0x0093), others: make([]int, n-1)}
}

// Channels implements ChannelChooser.
func (ch *CogcastChooser) Channels() int { return ch.c }

// Choose implements ChannelChooser.
func (ch *CogcastChooser) Choose(int) (int, []int) {
	src := ch.rand.Intn(ch.c)
	for i := range ch.others {
		ch.others[i] = ch.rand.Intn(ch.c)
	}
	return src, ch.others
}

// ReductionPlayer is the player P_A of Lemma 12: it simulates the broadcast
// algorithm in the two-set network and, in each simulated slot, proposes
// every not-yet-tried edge (a_slot, b_slot^u) — at most min{c, n} unique
// proposals per slot. A win in the game corresponds to the first slot in
// which the source shares a channel with another node.
type ReductionPlayer struct {
	chooser ChannelChooser
	slot    int
	queue   []Edge
	tried   map[Edge]bool
	slots   int
	last    Edge
}

var _ Player = (*ReductionPlayer)(nil)

// NewReductionPlayer wraps a chooser into a game player.
func NewReductionPlayer(chooser ChannelChooser) *ReductionPlayer {
	return &ReductionPlayer{chooser: chooser, tried: make(map[Edge]bool)}
}

// Name implements Player.
func (*ReductionPlayer) Name() string { return "reduction" }

// Propose implements Player.
func (p *ReductionPlayer) Propose(int) Edge {
	if c := p.chooser.Channels(); len(p.tried) >= c*c {
		// Every edge has been proposed. In a real game the winning edge was
		// among them (the matching is nonempty), so this only happens when
		// Propose is driven outside Play; repeat the last proposal rather
		// than spin waiting for a fresh one that cannot exist.
		return p.last
	}
	for len(p.queue) == 0 {
		src, others := p.chooser.Choose(p.slot)
		p.slot++
		p.slots++
		for _, b := range others {
			e := Edge{A: src, B: b}
			if !p.tried[e] {
				p.tried[e] = true
				p.queue = append(p.queue, e)
			}
		}
	}
	e := p.queue[0]
	p.queue = p.queue[1:]
	p.last = e
	return e
}

// SimulatedSlots returns how many broadcast slots have been simulated so
// far — the quantity Lemma 12 relates to game rounds by the min{c,n} factor.
func (p *ReductionPlayer) SimulatedSlots() int { return p.slots }

// WinProbability estimates the probability that building the player with
// build and playing a fresh (c,k) game ends within maxRounds, over the
// given number of trials. It is the measurement Lemmas 11 and 14 bound.
func WinProbability(c, k, maxRounds, trials int, seed int64, build func(trial int64) Player) (float64, error) {
	if trials < 1 {
		return 0, fmt.Errorf("games: trials=%d must be positive", trials)
	}
	wins := 0
	for trial := 0; trial < trials; trial++ {
		g, err := NewGame(c, k, rng.Derive(seed, int64(trial), 1))
		if err != nil {
			return 0, err
		}
		if won, _ := g.Play(build(int64(trial)), maxRounds); won {
			wins++
		}
	}
	return float64(wins) / float64(trials), nil
}
