package games

import (
	"reflect"
	"testing"

	"github.com/cogradio/crn/internal/adversary"
)

func quickTournament() Tournament {
	return Tournament{
		Nodes: 16, Channels: 8, K: 2, Trials: 3,
		Budget: adversary.Budget{PerSlot: 2, Total: 40},
		Seed:   7,
	}
}

func TestTournamentShape(t *testing.T) {
	res, err := RunTournament(quickTournament())
	if err != nil {
		t.Fatal(err)
	}
	wantRows := map[string]int{
		ArmCogcastJam:     len(Opponents(adversary.CanJam)),
		ArmCogcompBare:    len(Opponents(adversary.CanCrash)),
		ArmCogcompRecover: len(Opponents(adversary.CanCrash)),
	}
	for config, want := range wantRows {
		block := res.ByConfig(config)
		if len(block) != want {
			t.Fatalf("%s: %d rows, want %d", config, len(block), want)
		}
		if block[0].Strategy != "none" {
			t.Errorf("%s: baseline not ranked first: %q", config, block[0].Strategy)
		}
		if block[0].EnergySpent != 0 || block[0].Exhausted != 0 {
			t.Errorf("%s: baseline spent energy: %+v", config, block[0])
		}
		if block[0].MedianSlots > 0 && block[0].Overhead != 1 {
			t.Errorf("%s: baseline overhead = %v, want 1", config, block[0].Overhead)
		}
		for _, d := range block {
			if d.Trials != 3 {
				t.Errorf("%s/%s: trials = %d", config, d.Strategy, d.Trials)
			}
			if got := d.Completions + d.Degraded + d.Stalled; got != d.Trials {
				t.Errorf("%s/%s: outcomes %d do not partition %d trials", config, d.Strategy, got, d.Trials)
			}
			if d.Strategy != "none" && d.EnergySpent > float64(40) {
				t.Errorf("%s/%s: mean energy %v exceeds reserve", config, d.Strategy, d.EnergySpent)
			}
		}
	}
	if len(res.Duels) != wantRows[ArmCogcastJam]+wantRows[ArmCogcompBare]+wantRows[ArmCogcompRecover] {
		t.Errorf("total rows = %d", len(res.Duels))
	}
}

// TestTournamentDeterminism pins the acceptance criterion: the ranked
// tables are identical at any Workers and Shards setting.
func TestTournamentDeterminism(t *testing.T) {
	base := quickTournament()
	ref, err := RunTournament(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, variant := range []struct {
		workers, shards int
	}{{1, 1}, {4, 1}, {8, 1}, {1, 2}, {1, 4}, {4, 4}} {
		cfg := base
		cfg.Workers = variant.workers
		cfg.Shards = variant.shards
		got, err := RunTournament(cfg)
		if err != nil {
			t.Fatalf("workers=%d shards=%d: %v", variant.workers, variant.shards, err)
		}
		if !reflect.DeepEqual(got, ref) {
			t.Errorf("workers=%d shards=%d: tables diverge\n got %+v\nwant %+v", variant.workers, variant.shards, got, ref)
		}
	}
}

// TestTournamentZeroEnergy pins the ledger edge case at tournament level:
// with no reserve, every adversary row is identical to its config's
// baseline (the driver is never wired, so the run is the control run).
func TestTournamentZeroEnergy(t *testing.T) {
	cfg := quickTournament()
	cfg.Budget = adversary.Budget{PerSlot: 2, Total: 0}
	res, err := RunTournament(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, config := range []string{ArmCogcastJam, ArmCogcompBare, ArmCogcompRecover} {
		block := res.ByConfig(config)
		base := block[0]
		for _, d := range block[1:] {
			d.Strategy = base.Strategy
			d.Overhead = base.Overhead // both rows are baselines; ranking zeroes only one
			if !reflect.DeepEqual(d, base) {
				t.Errorf("%s: zero-energy row diverges from baseline:\n got %+v\nwant %+v", config, d, base)
			}
		}
	}
}
