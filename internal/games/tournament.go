package games

// The tournament runner extends the package's adversarial repertoire from
// the abstract hitting games to full protocol executions: it pits the
// repo's protocol configurations (COGCAST under the Theorem 18 jamming
// reduction; COGCOMP classic; COGCOMP under the recovery supervisor)
// against the reactive adversary population of package adversary, under
// one shared energy budget, and ranks the adversaries by the damage they
// inflict. Where the hitting games lower-bound what *any* algorithm can
// do, the tournament measures what *these* algorithms lose to an adaptive
// attacker with bounded energy.

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"github.com/cogradio/crn/internal/adversary"
	"github.com/cogradio/crn/internal/aggfunc"
	"github.com/cogradio/crn/internal/assign"
	"github.com/cogradio/crn/internal/cogcast"
	"github.com/cogradio/crn/internal/cogcomp"
	"github.com/cogradio/crn/internal/faults"
	"github.com/cogradio/crn/internal/jamming"
	"github.com/cogradio/crn/internal/parallel"
	recov "github.com/cogradio/crn/internal/recover"
	"github.com/cogradio/crn/internal/rng"
	"github.com/cogradio/crn/internal/sim"
	"github.com/cogradio/crn/internal/stats"
)

// Tournament configures one adversary tournament.
type Tournament struct {
	// Nodes and Channels size every arm's network. Channels is the full
	// physical spectrum for the jammed COGCAST arm and the channel count
	// of the partitioned static assignment for the COGCOMP arms.
	Nodes, Channels int
	// K is the per-node channel-set size of the COGCOMP arms' partitioned
	// assignment. Zero means 2.
	K int
	// Trials is the number of independent repetitions per duel. Zero
	// means 5.
	Trials int
	// Budget is the shared energy budget every adversary plays under. A
	// non-positive per-slot cap or total reserve makes every adversary
	// arm inert — byte-identical to its config's "none" baseline.
	Budget adversary.Budget
	// Seed roots all randomness; identical configs reproduce identical
	// results at any Workers or Shards setting.
	Seed int64
	// Workers bounds concurrent trial goroutines (0 = GOMAXPROCS, 1 =
	// serial). Results are identical for every value.
	Workers int
	// Shards splits each trial's per-slot protocol scan (sim.WithShards).
	// Results are identical for every value.
	Shards int
}

// Duel is one (protocol configuration, adversary strategy) cell of the
// tournament: aggregate robustness metrics over the configured trials.
type Duel struct {
	// Config names the protocol configuration under attack.
	Config string
	// Strategy names the adversary (see adversary.Strategies).
	Strategy string
	// Trials is the repetition count the remaining fields aggregate.
	Trials int
	// Completions counts trials that finished with full, correct results
	// (all informed / exact aggregate over all nodes).
	Completions int
	// Degraded counts trials that terminated with a wrong or partial
	// result; Stalled counts trials that ran out of slots.
	Degraded, Stalled int
	// MedianSlots is the median completion time over completed trials
	// (0 when no trial completed).
	MedianSlots float64
	// Overhead is MedianSlots relative to the same config's "none"
	// baseline row (1 for the baseline itself, 0 when undefined).
	Overhead float64
	// EnergySpent is the mean adversary energy charged per trial;
	// Exhausted counts trials in which the reserve ran dry.
	EnergySpent float64
	// Exhausted counts trials whose adversary ran out of energy.
	Exhausted int
}

// TournamentResult is the full ranked table set.
type TournamentResult struct {
	// Duels holds every cell, grouped by config in arm order; within each
	// config the baseline "none" row comes first and the adversaries
	// follow ranked by damage (fewest completions, most degraded/stalled,
	// largest overhead).
	Duels []Duel
}

// ByConfig returns the duels of one configuration, in ranked order.
func (r *TournamentResult) ByConfig(config string) []Duel {
	var out []Duel
	for _, d := range r.Duels {
		if d.Config == config {
			out = append(out, d)
		}
	}
	return out
}

// Arm names used in Duel.Config.
const (
	ArmCogcastJam     = "COGCAST/jam"
	ArmCogcompBare    = "COGCOMP/classic"
	ArmCogcompRecover = "COGCOMP/recover"
)

// trialOutcome is one trial's contribution to a Duel.
type trialOutcome struct {
	complete, degraded, stalled bool
	slots                       float64
	energy                      int
	exhausted                   bool
}

// tourArena is the per-worker scratch for tournament trials.
type tourArena struct {
	assign assign.Builder
	cast   cogcast.Arena
	comp   cogcomp.Arena
	rec    recov.Arena
	inputs []int64
}

// RunTournament executes the full tournament: every protocol arm against
// every strategy that can wield the arm's weapon, plus the "none"
// baseline. Deterministic for a fixed config at any Workers/Shards value.
func RunTournament(cfg Tournament) (*TournamentResult, error) {
	if cfg.Nodes < 2 || cfg.Channels < 2 {
		return nil, fmt.Errorf("games: tournament needs nodes >= 2 and channels >= 2, got n=%d c=%d", cfg.Nodes, cfg.Channels)
	}
	if cfg.K == 0 {
		cfg.K = 2
	}
	if cfg.Trials == 0 {
		cfg.Trials = 5
	}

	type armSpec struct {
		name   string
		canUse func(string) bool
		run    func(a *tourArena, strategy string, seed int64) (trialOutcome, error)
	}
	arms := []armSpec{
		{ArmCogcastJam, adversary.CanJam, func(a *tourArena, s string, ts int64) (trialOutcome, error) {
			return cogcastTrial(a, cfg, s, ts)
		}},
		{ArmCogcompBare, adversary.CanCrash, func(a *tourArena, s string, ts int64) (trialOutcome, error) {
			return cogcompTrial(a, cfg, s, ts, false)
		}},
		{ArmCogcompRecover, adversary.CanCrash, func(a *tourArena, s string, ts int64) (trialOutcome, error) {
			return cogcompTrial(a, cfg, s, ts, true)
		}},
	}

	res := &TournamentResult{}
	for ai, arm := range arms {
		var block []Duel
		for _, strategy := range Opponents(arm.canUse) {
			// Trial seeds are paired across strategies — derived from the
			// arm and trial index alone — so every adversary faces the same
			// baseline draws, overhead comparisons are paired, and an inert
			// adversary's row is byte-identical to the "none" row.
			outcomes, err := parallel.MapArena(context.Background(), cfg.Trials, cfg.Workers,
				func() *tourArena { return new(tourArena) },
				func(trial int, a *tourArena) (trialOutcome, error) {
					ts := rng.Derive(cfg.Seed, int64(ai), int64(trial), 0x7031)
					return arm.run(a, strategy, ts)
				})
			if err != nil {
				return nil, fmt.Errorf("games: %s vs %s: %w", arm.name, strategy, err)
			}
			block = append(block, summarizeDuel(arm.name, strategy, outcomes))
		}
		rankDuels(block)
		res.Duels = append(res.Duels, block...)
	}
	return res, nil
}

// Opponents lists the strategies admitted to an arm: the "none" baseline
// first, then every strategy the weapon predicate accepts, in registry
// order.
func Opponents(canUse func(string) bool) []string {
	out := []string{"none"}
	for _, name := range adversary.Strategies() {
		if name != "none" && canUse(name) {
			out = append(out, name)
		}
	}
	return out
}

// newDuelDriver builds the budgeted driver for one trial, or nil when the
// strategy/budget combination is inert (the "none" baseline and the
// zero-energy arms both collapse to an unattacked run — byte-identical to
// the baseline by construction, not merely by measure).
func newDuelDriver(strategy string, n, c int, budget adversary.Budget, seed int64, wire func(*adversary.Driver)) (*adversary.Driver, error) {
	if strategy == "none" || budget.PerSlot <= 0 || budget.Total <= 0 {
		return nil, nil
	}
	strat, err := adversary.New(strategy)
	if err != nil {
		return nil, err
	}
	drv, err := adversary.NewDriver(strat, n, c, budget, seed)
	if err != nil {
		return nil, err
	}
	wire(drv)
	if !drv.Active() {
		return nil, nil
	}
	drv.Reset()
	return drv, nil
}

// cogcastTrial runs one jammed COGCAST broadcast: the driver feeds the
// Theorem 18 reduction as the jammer and observes the slot outcomes. The
// baseline runs the identical reduction with a zero budget and no jammer.
func cogcastTrial(a *tourArena, cfg Tournament, strategy string, ts int64) (trialOutcome, error) {
	var out trialOutcome
	n, c := cfg.Nodes, cfg.Channels
	kJam := cfg.Budget.PerSlot
	if 2*kJam >= c {
		kJam = (c - 1) / 2
	}
	drv, err := newDuelDriver(strategy, n, c, cfg.Budget, ts, func(d *adversary.Driver) { d.EnableJam(kJam) })
	if err != nil {
		return out, err
	}
	var jam jamming.Jammer = jamming.NoJammer{}
	k := 0
	rcfg := cogcast.RunConfig{UntilAllInformed: true, Shards: cfg.Shards}
	if drv != nil {
		jam, k = drv, kJam
		rcfg.Observer = drv
	}
	asn, err := jamming.NewAssignment(n, c, k, jam, ts)
	if err != nil {
		return out, err
	}
	res, err := a.cast.Run(asn, 0, "m", ts, rcfg)
	if err != nil {
		return out, err
	}
	if res.AllInformed {
		out.complete = true
		out.slots = float64(res.Slots)
	} else {
		out.stalled = true
	}
	chargeLedger(&out, drv)
	return out, nil
}

// cogcompTrial runs one COGCOMP aggregation — classic or under the
// recovery supervisor — with the driver as crash schedule (source
// protected) and observer.
func cogcompTrial(a *tourArena, cfg Tournament, strategy string, ts int64, recover bool) (trialOutcome, error) {
	var out trialOutcome
	n, c := cfg.Nodes, cfg.Channels
	drv, err := newDuelDriver(strategy, n, c, cfg.Budget, ts, func(d *adversary.Driver) { d.EnableCrash(0) })
	if err != nil {
		return out, err
	}
	asn, err := a.assign.Partitioned(n, c, cfg.K, assign.LocalLabels, ts)
	if err != nil {
		return out, err
	}
	if cap(a.inputs) < n {
		a.inputs = make([]int64, n)
	}
	a.inputs = a.inputs[:n]
	var want int64
	for i := range a.inputs {
		a.inputs[i] = int64(i + 1)
		want += a.inputs[i]
	}

	if recover {
		rcfg := recov.Config{Shards: cfg.Shards}
		if drv != nil {
			rcfg.Schedule = drv
			rcfg.Observer = drv
		}
		res, err := a.rec.Run(asn, 0, a.inputs, ts, rcfg)
		if err != nil {
			return out, err
		}
		switch {
		case res.Complete && res.Value == aggfunc.Value(want):
			out.complete = true
		case res.Stalled:
			out.stalled = true
		default:
			out.degraded = true
		}
		out.slots = float64(res.TotalSlots)
		chargeLedger(&out, drv)
		return out, nil
	}

	ccfg := cogcomp.Config{Shards: cfg.Shards}
	var wrap func(sim.NodeID, *cogcomp.Node) sim.Protocol
	if drv != nil {
		ccfg.Observer = drv
		wrap = func(id sim.NodeID, nd *cogcomp.Node) sim.Protocol {
			return faults.Wrap(nd, id, drv, faults.WithRestart())
		}
	}
	res, err := a.comp.RunWith(asn, 0, a.inputs, ts, ccfg, wrap)
	switch {
	case err == nil && res.Value == aggfunc.Value(want):
		out.complete = true
		out.slots = float64(res.TotalSlots)
	case err == nil:
		// Terminated, wrong answer: the unsupervised protocol silently
		// corrupted (E20's failure mode under outages).
		out.degraded = true
		out.slots = float64(res.TotalSlots)
	case errors.Is(err, cogcomp.ErrIncomplete):
		out.stalled = true
		if res != nil {
			out.slots = float64(res.TotalSlots)
		}
	case errors.Is(err, sim.ErrMaxSlots):
		out.stalled = true
	default:
		return out, err
	}
	chargeLedger(&out, drv)
	return out, nil
}

func chargeLedger(out *trialOutcome, drv *adversary.Driver) {
	if drv == nil {
		return
	}
	l := drv.Ledger()
	out.energy = l.Spent
	out.exhausted = l.ExhaustedAt >= 0
}

// summarizeDuel folds per-trial outcomes into one Duel row (Overhead is
// filled in by rankDuels once the baseline median is known).
func summarizeDuel(config, strategy string, outcomes []trialOutcome) Duel {
	d := Duel{Config: config, Strategy: strategy, Trials: len(outcomes)}
	var done []float64
	var energy float64
	for _, o := range outcomes {
		switch {
		case o.complete:
			d.Completions++
			done = append(done, o.slots)
		case o.degraded:
			d.Degraded++
		case o.stalled:
			d.Stalled++
		}
		energy += float64(o.energy)
		if o.exhausted {
			d.Exhausted++
		}
	}
	if len(done) > 0 {
		s, err := stats.Summarize(done)
		if err == nil {
			d.MedianSlots = s.Median
		}
	}
	if d.Trials > 0 {
		d.EnergySpent = energy / float64(d.Trials)
	}
	return d
}

// rankDuels orders one config's block — baseline first, adversaries by
// damage — and computes each row's overhead against the baseline median.
func rankDuels(block []Duel) {
	var base float64
	for _, d := range block {
		if d.Strategy == "none" {
			base = d.MedianSlots
		}
	}
	for i := range block {
		if base > 0 && block[i].MedianSlots > 0 {
			block[i].Overhead = block[i].MedianSlots / base
		}
	}
	sort.SliceStable(block, func(i, j int) bool {
		a, b := block[i], block[j]
		if (a.Strategy == "none") != (b.Strategy == "none") {
			return a.Strategy == "none"
		}
		if a.Completions != b.Completions {
			return a.Completions < b.Completions
		}
		if af, bf := a.Degraded+a.Stalled, b.Degraded+b.Stalled; af != bf {
			return af > bf
		}
		if a.Overhead != b.Overhead {
			return a.Overhead > b.Overhead
		}
		return a.Strategy < b.Strategy
	})
}
