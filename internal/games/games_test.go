package games

import (
	"testing"

	"github.com/cogradio/crn/internal/rng"
)

func TestNewGameMatchingIsValid(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		g, err := NewGame(10, 4, seed)
		if err != nil {
			t.Fatal(err)
		}
		if len(g.matching) != 4 {
			t.Fatalf("matching size %d, want 4", len(g.matching))
		}
		seenB := make(map[int]bool)
		for a, b := range g.matching {
			if a < 0 || a >= 10 || b < 0 || b >= 10 {
				t.Fatalf("edge (%d,%d) out of range", a, b)
			}
			if seenB[b] {
				t.Fatalf("b-vertex %d matched twice", b)
			}
			seenB[b] = true
		}
	}
}

func TestNewGameValidation(t *testing.T) {
	for _, bad := range []struct{ c, k int }{{0, 1}, {3, 0}, {3, 4}, {-1, -1}} {
		if _, err := NewGame(bad.c, bad.k, 1); err == nil {
			t.Errorf("NewGame(%d,%d) accepted", bad.c, bad.k)
		}
	}
}

func TestHitAndPlay(t *testing.T) {
	g, err := NewGame(5, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Perfect matching: every a is matched; the player that scans all
	// edges must win within c² proposals.
	p := NewNonRepeatingPlayer(5, 7)
	won, rounds := g.Play(p, 25)
	if !won {
		t.Fatal("scanning player failed to win a complete game within c² rounds")
	}
	if rounds < 1 || rounds > 25 {
		t.Errorf("rounds = %d", rounds)
	}
}

func TestPlayRespectsMaxRounds(t *testing.T) {
	g, err := NewGame(8, 1, 9)
	if err != nil {
		t.Fatal(err)
	}
	won, rounds := g.Play(NewUniformPlayer(8, 9), 1)
	if rounds > 1 {
		t.Errorf("rounds = %d with maxRounds 1", rounds)
	}
	_ = won
}

func TestLowerBoundRoundsFormula(t *testing.T) {
	// β = c/k = 10 → α = 2·(10/9)² ≈ 2.469; c²/(αk) = 400/4.938 ≈ 81.
	got := LowerBoundRounds(20, 2)
	if got < 78 || got > 84 {
		t.Errorf("LowerBoundRounds(20,2) = %d, want ≈ 81", got)
	}
	// β = 2 → α = 8: the paper's worst constant.
	if got := LowerBoundRounds(16, 8); got != 4 {
		t.Errorf("LowerBoundRounds(16,8) = %d, want 16·16/(8·8) = 4", got)
	}
	if got := CompleteLowerBoundRounds(30); got != 10 {
		t.Errorf("CompleteLowerBoundRounds(30) = %d", got)
	}
}

func TestLemma11EmpiricalBound(t *testing.T) {
	// No player should win within LowerBoundRounds(c,k) rounds with
	// probability ≥ 1/2. Check both reference players with margin for
	// sampling noise.
	const c, k, trials = 20, 2, 400
	bound := LowerBoundRounds(c, k)
	players := map[string]func(trial int64) Player{
		"uniform":       func(tr int64) Player { return NewUniformPlayer(c, rng.Derive(1, tr)) },
		"non-repeating": func(tr int64) Player { return NewNonRepeatingPlayer(c, rng.Derive(2, tr)) },
	}
	for name, build := range players {
		p, err := WinProbability(c, k, bound, trials, 42, build)
		if err != nil {
			t.Fatal(err)
		}
		if p >= 0.5 {
			t.Errorf("%s player wins with probability %.3f within %d rounds; Lemma 11 bounds this below 1/2", name, p, bound)
		}
	}
}

func TestLemma14EmpiricalBound(t *testing.T) {
	// c-complete game: within c/3 rounds the win probability must stay
	// below 1/2 (it is ≈ 1−e^{-1/3} ≈ 0.28 for the uniform player).
	const c, trials = 30, 400
	bound := CompleteLowerBoundRounds(c)
	p, err := WinProbability(c, c, bound, trials, 7, func(tr int64) Player {
		return NewNonRepeatingPlayer(c, rng.Derive(3, tr))
	})
	if err != nil {
		t.Fatal(err)
	}
	if p >= 0.5 {
		t.Errorf("win probability %.3f within c/3 rounds; Lemma 14 bounds this below 1/2", p)
	}
}

func TestNonRepeatingPlayerCoversAllEdges(t *testing.T) {
	const c = 6
	p := NewNonRepeatingPlayer(c, 11)
	seen := make(map[Edge]bool)
	for round := 0; round < c*c; round++ {
		e := p.Propose(round)
		if e.A < 0 || e.A >= c || e.B < 0 || e.B >= c {
			t.Fatalf("edge %v out of range", e)
		}
		if seen[e] {
			t.Fatalf("edge %v proposed twice", e)
		}
		seen[e] = true
	}
	if len(seen) != c*c {
		t.Errorf("covered %d edges, want %d", len(seen), c*c)
	}
	// Past exhaustion the player repeats its last proposal rather than
	// going out of range.
	last := p.Propose(c * c)
	if last.A < 0 || last.A >= c {
		t.Errorf("post-exhaustion proposal %v invalid", last)
	}
}

func TestReductionPlayerWinsEveryGame(t *testing.T) {
	// The reduction player simulates COGCAST in the two-set network; it
	// must eventually win every game (COGCAST solves broadcast w.h.p.).
	const c, k, n = 12, 3, 8
	for seed := int64(0); seed < 10; seed++ {
		g, err := NewGame(c, k, seed)
		if err != nil {
			t.Fatal(err)
		}
		p := NewReductionPlayer(NewCogcastChooser(n, c, seed))
		won, rounds := g.Play(p, 100000)
		if !won {
			t.Fatalf("seed %d: reduction player lost after %d rounds", seed, rounds)
		}
		// Lemma 12's accounting: rounds ≤ min{c,n} · simulated slots.
		if lim := minInt(c, n) * p.SimulatedSlots(); rounds > lim {
			t.Errorf("seed %d: %d rounds > min{c,n}·slots = %d", seed, rounds, lim)
		}
	}
}

func TestReductionPlayerUniqueProposalsPerSlot(t *testing.T) {
	// Per simulated slot the player may emit at most min{c, n-1} new
	// proposals (all share the same source endpoint).
	const c, n = 10, 6
	p := NewReductionPlayer(NewCogcastChooser(n, c, 3))
	perSlot := make(map[int]int)
	seen := make(map[Edge]bool)
	// Only c² = 100 unique proposals exist; stay below that.
	for i := 0; i < 90; i++ {
		before := p.SimulatedSlots()
		e := p.Propose(i)
		if seen[e] {
			t.Fatalf("proposal %v repeated", e)
		}
		seen[e] = true
		perSlot[before]++
	}
	for slot, count := range perSlot {
		if count > n-1 {
			t.Errorf("slot %d produced %d proposals, want <= n-1 = %d", slot, count, n-1)
		}
	}
}

func TestWinProbabilityValidation(t *testing.T) {
	if _, err := WinProbability(5, 2, 10, 0, 1, func(int64) Player { return NewUniformPlayer(5, 1) }); err == nil {
		t.Error("zero trials accepted")
	}
	if _, err := WinProbability(0, 0, 10, 5, 1, func(int64) Player { return NewUniformPlayer(5, 1) }); err == nil {
		t.Error("invalid game parameters accepted")
	}
}

func TestPlayerNames(t *testing.T) {
	if NewUniformPlayer(3, 1).Name() != "uniform" {
		t.Error("uniform name")
	}
	if NewNonRepeatingPlayer(3, 1).Name() != "non-repeating" {
		t.Error("non-repeating name")
	}
	if NewReductionPlayer(NewCogcastChooser(3, 3, 1)).Name() != "reduction" {
		t.Error("reduction name")
	}
}

func TestReductionPlayerExhaustionDoesNotSpin(t *testing.T) {
	// With c=3 there are only 9 unique edges. Driving Propose past
	// exhaustion must return (repeated) edges rather than loop forever.
	p := NewReductionPlayer(NewCogcastChooser(4, 3, 1))
	for i := 0; i < 50; i++ {
		e := p.Propose(i)
		if e.A < 0 || e.A >= 3 || e.B < 0 || e.B >= 3 {
			t.Fatalf("proposal %v out of range", e)
		}
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
