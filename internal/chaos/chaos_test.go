// The resilience property suite: infrastructure faults injected into real
// protocol runs, with four standing assertions — no goroutine leaks, no
// torn trace output, byte-identical results for runs that complete, and
// deterministic cancellation errors.
package chaos_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	crn "github.com/cogradio/crn"
	"github.com/cogradio/crn/internal/assign"
	"github.com/cogradio/crn/internal/chaos"
	"github.com/cogradio/crn/internal/cogcast"
	"github.com/cogradio/crn/internal/parallel"
	"github.com/cogradio/crn/internal/scenario"
	"github.com/cogradio/crn/internal/sim"
	"github.com/cogradio/crn/internal/trace"
)

// TestMain gates the whole package on goroutine hygiene: any test that
// abandons a worker fails the run even if its own assertions passed.
func TestMain(m *testing.M) {
	os.Exit(chaos.VerifyNoLeaks(m))
}

func newNet(t *testing.T, seed int64) *crn.Network {
	t.Helper()
	net, err := crn.NewNetwork(crn.Spec{
		Nodes: 64, ChannelsPerNode: 8, MinOverlap: 2,
		TotalChannels: 24, Topology: crn.SharedCore, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// TestEngineCancelDeterministic pins the cancellation error as a pure
// function of the cancellation slot: the same slot-exact fake context
// yields the identical error string on every repetition and at every
// shard count.
func TestEngineCancelDeterministic(t *testing.T) {
	defer chaos.LeakCheck(t)()
	b := assign.Builder{}
	asn, err := b.Partitioned(48, 6, 2, assign.LocalLabels, 7)
	if err != nil {
		t.Fatal(err)
	}
	const want = "sim: run canceled after 5 slots"
	for _, shards := range []int{1, 4} {
		for rep := 0; rep < 3; rep++ {
			_, err := cogcast.Run(asn, 0, "m", 7, cogcast.RunConfig{
				UntilAllInformed: true, MaxSlots: 1 << 20,
				Shards: shards, Context: chaos.CancelAfterChecks(5),
			})
			if err == nil || err.Error() != want {
				t.Fatalf("shards=%d rep=%d: error %v, want %q", shards, rep, err, want)
			}
			var it *sim.Interrupted
			if !errors.As(err, &it) || it.Slots != 5 {
				t.Fatalf("shards=%d: not an Interrupted with Slots=5: %#v", shards, err)
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("shards=%d: errors.Is(err, context.Canceled) = false", shards)
			}
		}
	}
}

// TestBroadcastByteIdenticalWithContext asserts the acceptance criterion
// head-on: attaching a context (that never fires) changes nothing about a
// completing run — results and trace bytes are identical to the
// context-free run at every shards/sparse setting.
func TestBroadcastByteIdenticalWithContext(t *testing.T) {
	defer chaos.LeakCheck(t)()
	run := func(ctx context.Context, shards int, sparse bool) (*crn.BroadcastResult, []byte) {
		var buf bytes.Buffer
		res, err := newNet(t, 3).Broadcast(crn.BroadcastOptions{
			Payload: "hello", Seed: 3, RunToCompletion: true, MaxSlots: 1 << 20,
			Shards: shards, Sparse: sparse, Trace: &buf, Context: ctx,
		})
		if err != nil {
			t.Fatalf("shards=%d sparse=%v ctx=%v: %v", shards, sparse, ctx, err)
		}
		return res, buf.Bytes()
	}
	for _, shards := range []int{1, 3} {
		for _, sparse := range []bool{false, true} {
			base, baseTrace := run(nil, shards, sparse)
			for name, ctx := range map[string]context.Context{
				"background":  context.Background(),
				"never-fires": chaos.CancelAfterChecks(1 << 30),
			} {
				res, tr := run(ctx, shards, sparse)
				if !reflect.DeepEqual(res, base) {
					t.Errorf("shards=%d sparse=%v ctx=%s: result differs from context-free run", shards, sparse, name)
				}
				if !bytes.Equal(tr, baseTrace) {
					t.Errorf("shards=%d sparse=%v ctx=%s: trace bytes differ from context-free run", shards, sparse, name)
				}
			}
		}
	}
}

// TestScenarioRepeatByteIdentical drives the same property through the
// scenario layer's repeated-run path: rendered output is identical with
// and without a context at every parallel/shards/sparse combination.
func TestScenarioRepeatByteIdentical(t *testing.T) {
	defer chaos.LeakCheck(t)()
	render := func(ctx context.Context, workers, shards int, sparse bool) string {
		sc := &scenario.Scenario{
			Name: "chaos", Seed: 11,
			Topology: scenario.Topology{Nodes: 32, ChannelsPerNode: 6, MinOverlap: 2,
				TotalChannels: 18, Generator: "shared-core", Labels: "local"},
			Protocol: scenario.Protocol{Name: "cogcast", Payload: "INIT", Aggregate: "sum",
				Rounds: 3, Rumors: 4},
			Engine: scenario.Engine{Shards: shards, Sparse: sparse, Parallel: workers, Repeat: 5},
		}
		var buf bytes.Buffer
		var err error
		if ctx == nil {
			_, err = sc.Execute(&buf)
		} else {
			_, err = sc.ExecuteContext(ctx, &buf)
		}
		if err != nil {
			t.Fatalf("workers=%d shards=%d sparse=%v: %v", workers, shards, sparse, err)
		}
		return buf.String()
	}
	base := render(nil, 1, 1, false)
	for _, workers := range []int{1, 2, 4} {
		for _, shards := range []int{1, 2} {
			for _, sparse := range []bool{false, true} {
				for name, ctx := range map[string]context.Context{
					"none":        nil,
					"background":  context.Background(),
					"never-fires": chaos.CancelAfterChecks(1 << 30),
				} {
					if got := render(ctx, workers, shards, sparse); got != base {
						t.Errorf("workers=%d shards=%d sparse=%v ctx=%s: output differs\n--- base\n%s--- got\n%s",
							workers, shards, sparse, name, base, got)
					}
				}
			}
		}
	}
}

// TestCancelTraceGraceful cancels a traced run mid-flight and asserts the
// whole graceful-interrupt contract: the typed error with slot-exact
// partial progress, both sentinel matches, and a trace file that is
// complete (end-of-stream marker present) and self-describes the
// interrupt with a cancel event.
func TestCancelTraceGraceful(t *testing.T) {
	defer chaos.LeakCheck(t)()
	var buf bytes.Buffer
	_, err := newNet(t, 5).Broadcast(crn.BroadcastOptions{
		Payload: "x", Seed: 5, RunToCompletion: true, MaxSlots: 1 << 20,
		Trace: &buf, Context: chaos.CancelAfterChecks(4),
	})
	var ie *crn.InterruptedError
	if !errors.As(err, &ie) {
		t.Fatalf("error %v (%T), want *crn.InterruptedError", err, err)
	}
	if ie.Slots != 4 || ie.Deadline {
		t.Fatalf("InterruptedError = %+v, want Slots=4 Deadline=false", ie)
	}
	if !errors.Is(err, crn.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("sentinel mismatch: %v", err)
	}
	if want := "sim: run canceled after 4 slots"; err.Error() != want {
		t.Fatalf("error text %q, want %q", err.Error(), want)
	}
	s, serr := trace.Summarize(bytes.NewReader(buf.Bytes()))
	if serr != nil {
		t.Fatal(serr)
	}
	if !s.Complete {
		t.Fatal("interrupted trace is missing its end-of-stream marker")
	}
	if s.Cancel == nil || s.Cancel.Slot != 4 || s.Cancel.A != 0 {
		t.Fatalf("cancel event = %+v, want slot 4, deadline 0", s.Cancel)
	}
}

// TestDeadlineErrors exercises both deadline paths: an already-expired
// context deadline trips deterministically before slot zero, and the
// Deadline option produces the deadline sentinel.
func TestDeadlineErrors(t *testing.T) {
	defer chaos.LeakCheck(t)()
	expired, cancel := context.WithDeadline(context.Background(), time.Unix(0, 0))
	defer cancel()
	_, err := newNet(t, 9).Broadcast(crn.BroadcastOptions{
		Payload: "x", Seed: 9, RunToCompletion: true, MaxSlots: 1 << 20, Context: expired,
	})
	if want := "sim: deadline exceeded after 0 slots"; err == nil || err.Error() != want {
		t.Fatalf("expired-context error %v, want %q", err, want)
	}
	if !errors.Is(err, crn.ErrDeadlineExceeded) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("sentinel mismatch: %v", err)
	}
	var ie *crn.InterruptedError
	if !errors.As(err, &ie) || !ie.Deadline || ie.Slots != 0 {
		t.Fatalf("InterruptedError = %+v, want Deadline=true Slots=0", ie)
	}

	// The Deadline option: a 1ns budget cannot survive a 4096-node
	// aggregation; the exact interrupt slot is wall-clock dependent, but
	// the typed error is not.
	inputs := make([]int64, 4096)
	big, err := crn.NewNetwork(crn.Spec{
		Nodes: 4096, ChannelsPerNode: 8, MinOverlap: 2,
		TotalChannels: 24, Topology: crn.SharedCore, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = big.Aggregate(inputs, crn.AggregateOptions{Seed: 1, Deadline: time.Nanosecond})
	if !errors.Is(err, crn.ErrDeadlineExceeded) {
		t.Fatalf("Deadline option error %v, want ErrDeadlineExceeded", err)
	}
}

// TestPanicQuarantineDeterministic injects panicking trial closures and
// asserts the pool's report is identical at every worker count: lowest
// panicking index wins, its stack is attached, and every healthy trial
// still delivered its result.
func TestPanicQuarantineDeterministic(t *testing.T) {
	defer chaos.LeakCheck(t)()
	for _, workers := range []int{1, 2, 8} {
		out, err := parallel.Map(context.Background(), 40, workers, func(i int) (int, error) {
			if i == 17 || i == 5 {
				panic(fmt.Sprintf("injected chaos at trial %d", i))
			}
			return i * 3, nil
		})
		var pe *parallel.TrialPanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: error %v (%T), want *TrialPanicError", workers, err, err)
		}
		if pe.Trial != 5 || len(pe.Stack) == 0 {
			t.Fatalf("workers=%d: Trial=%d stack=%dB, want lowest index 5 with a stack", workers, pe.Trial, len(pe.Stack))
		}
		if !strings.Contains(err.Error(), "trial 5 panicked") || !strings.Contains(err.Error(), "injected chaos at trial 5") {
			t.Fatalf("workers=%d: error text %q lacks index and payload", workers, err.Error())
		}
		for _, i := range []int{0, 4, 6, 16, 18, 39} {
			if out[i] != i*3 {
				t.Fatalf("workers=%d: healthy trial %d lost its result (%d)", workers, i, out[i])
			}
		}
		if out[5] != 0 || out[17] != 0 {
			t.Fatalf("workers=%d: panicked trials hold non-zero results", workers)
		}
	}
}

// TestMidRunCancelDrains cancels a pool mid-run and asserts the workers
// drain without leaking and the error accounts for the finished trials.
func TestMidRunCancelDrains(t *testing.T) {
	defer chaos.LeakCheck(t)()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	started := make(chan struct{})
	var startOnce sync.Once
	go func() { <-started; cancel() }()
	out, err := parallel.Map(ctx, 64, 8, func(i int) (int, error) {
		startOnce.Do(func() { close(started) })
		time.Sleep(time.Millisecond)
		return i + 1, nil
	})
	if err != nil {
		var ce *parallel.CanceledError
		if !errors.As(err, &ce) {
			t.Fatalf("error %v (%T), want *CanceledError", err, err)
		}
		if ce.Total != 64 || ce.Finished < 0 || ce.Finished >= 64 {
			t.Fatalf("CanceledError = %+v, want Total=64, 0<=Finished<64", ce)
		}
		finished := 0
		for _, v := range out {
			if v != 0 {
				finished++
			}
		}
		if finished < ce.Finished {
			t.Fatalf("only %d results present for %d reported finished trials", finished, ce.Finished)
		}
	}
}

// TestSlowShardsByteIdentical runs the engine over an assignment with
// deliberately dragging shards and asserts results match the serial,
// undragged run byte for byte.
func TestSlowShardsByteIdentical(t *testing.T) {
	defer chaos.LeakCheck(t)()
	b := assign.Builder{}
	asn, err := b.Partitioned(64, 8, 2, assign.LocalLabels, 13)
	if err != nil {
		t.Fatal(err)
	}
	base, err := cogcast.Run(asn, 0, "m", 13, cogcast.RunConfig{UntilAllInformed: true, MaxSlots: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	slow := &chaos.SlowAssignment{Assignment: asn, Stride: 7, Yields: 3}
	for _, cfg := range []cogcast.RunConfig{
		{UntilAllInformed: true, MaxSlots: 1 << 20, Shards: 2},
		{UntilAllInformed: true, MaxSlots: 1 << 20, Shards: 4},
		{UntilAllInformed: true, MaxSlots: 1 << 20, Sparse: true},
	} {
		res, err := cogcast.Run(slow, 0, "m", 13, cfg)
		if err != nil {
			t.Fatalf("shards=%d sparse=%v: %v", cfg.Shards, cfg.Sparse, err)
		}
		if !reflect.DeepEqual(res, base) {
			t.Fatalf("shards=%d sparse=%v: dragged run differs from serial baseline", cfg.Shards, cfg.Sparse)
		}
	}
}

// TestTornTraceDetection verifies the three completeness verdicts a trace
// reader can reach: intact (marker present and counts match), truncated
// (marker missing — a crash or kill -9 cut the stream), and corrupted
// (content after the marker, or a count mismatch).
func TestTornTraceDetection(t *testing.T) {
	defer chaos.LeakCheck(t)()
	var buf bytes.Buffer
	if _, err := newNet(t, 21).Broadcast(crn.BroadcastOptions{
		Payload: "x", Seed: 21, RunToCompletion: true, MaxSlots: 1 << 20, Trace: &buf,
	}); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()

	s, err := trace.Summarize(bytes.NewReader(whole))
	if err != nil || !s.Complete {
		t.Fatalf("intact trace: err=%v complete=%v, want clean and complete", err, s.Complete)
	}

	// Strip the end-of-stream marker: the events before it still parse,
	// but the stream must self-report as truncated.
	lines := bytes.Split(bytes.TrimSuffix(whole, []byte("\n")), []byte("\n"))
	if !bytes.Contains(lines[len(lines)-1], []byte("crn-trace-eof")) {
		t.Fatalf("last line is not the end-of-stream marker: %s", lines[len(lines)-1])
	}
	headless := append(bytes.Join(lines[:len(lines)-1], []byte("\n")), '\n')
	s, err = trace.Summarize(bytes.NewReader(headless))
	if err != nil {
		t.Fatalf("marker-stripped trace: %v", err)
	}
	if s.Complete {
		t.Fatal("marker-stripped trace claims to be complete")
	}

	// Tear the file mid-line, as a crashed writer would: the reader must
	// fail loudly, not fold the partial line into the metrics.
	torn := whole[:len(whole)-10]
	if _, err := trace.Summarize(bytes.NewReader(torn)); err == nil {
		t.Fatal("mid-line torn trace parsed cleanly")
	}

	// Content after the marker is corruption, not extra data.
	tail := append(append([]byte{}, whole...), []byte(`{"k":"slot","t":9}`+"\n")...)
	if _, err := trace.Summarize(bytes.NewReader(tail)); err == nil {
		t.Fatal("content after the end-of-stream marker parsed cleanly")
	}
}

// TestScenarioLimits covers the limits section end to end: max_slots caps
// the budget, a bad deadline fails fast, and an expired ambient context
// interrupts the scenario with the typed error.
func TestScenarioLimits(t *testing.T) {
	defer chaos.LeakCheck(t)()
	base := scenario.Scenario{
		Name: "limits", Seed: 2,
		Topology: scenario.Topology{Nodes: 32, ChannelsPerNode: 6, MinOverlap: 2,
			TotalChannels: 18, Generator: "shared-core", Labels: "local"},
		Protocol: scenario.Protocol{Name: "cogcast", Payload: "INIT", Aggregate: "sum",
			Rounds: 3, Rumors: 4},
		Engine: scenario.Engine{Shards: 1, Repeat: 1},
	}

	capped := base
	capped.Limits = scenario.Limits{MaxSlots: 3}
	var buf bytes.Buffer
	oc, err := capped.Execute(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if oc.Slots != 3 || oc.AllInformed {
		t.Fatalf("max_slots=3: got %d slots, informed=%v; want the capped budget", oc.Slots, oc.AllInformed)
	}

	bad := base
	bad.Limits = scenario.Limits{Deadline: "soon"}
	if _, err := bad.Execute(&buf); err == nil || !strings.Contains(err.Error(), "limits.deadline") {
		t.Fatalf("bad deadline error %v, want a limits.deadline complaint", err)
	}
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "limits.deadline") {
		t.Fatalf("Validate error %v, want a limits.deadline complaint", err)
	}

	expired, cancel := context.WithDeadline(context.Background(), time.Unix(0, 0))
	defer cancel()
	if _, err := base.ExecuteContext(expired, &buf); !errors.Is(err, crn.ErrDeadlineExceeded) {
		t.Fatalf("expired ambient context error %v, want ErrDeadlineExceeded", err)
	}
}

// TestScenarioLimitsRoundTrip pins the DSL wiring: a limits section
// parses, survives the canonical emit fixed point, and rejects unknown
// keys.
func TestScenarioLimitsRoundTrip(t *testing.T) {
	src := []byte(`name: lims
seed: 4
topology:
  nodes: 16
  channels_per_node: 4
  min_overlap: 2
  generator: shared-core
protocol:
  name: cogcast
limits:
  deadline: 30s
  max_slots: 500
`)
	sc, err := scenario.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Limits.Deadline != "30s" || sc.Limits.MaxSlots != 500 {
		t.Fatalf("decoded limits %+v", sc.Limits)
	}
	sc.Normalize()
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	once := sc.Emit()
	re, err := scenario.Parse(once)
	if err != nil {
		t.Fatal(err)
	}
	re.Normalize()
	if again := re.Emit(); !bytes.Equal(once, again) {
		t.Fatalf("emit is not a fixed point:\n--- once\n%s--- again\n%s", once, again)
	}
	if !bytes.Contains(once, []byte("limits:\n  deadline: 30s\n  max_slots: 500\n")) {
		t.Fatalf("canonical form lacks the limits block:\n%s", once)
	}
	if _, err := scenario.Parse([]byte("name: x\nlimits:\n  wall_clock: 3\n")); err == nil ||
		!strings.Contains(err.Error(), `unknown field "wall_clock"`) {
		t.Fatalf("unknown limits key error %v", err)
	}
}
