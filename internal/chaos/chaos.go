// Package chaos injects infrastructure faults into the simulation stack —
// contexts that cancel at exact slot counts, panicking trial closures,
// artificially slow assignment shards — and houses the property suite that
// asserts the resilience substrate holds up under them: no goroutine
// leaks, no torn trace files, byte-identical output for runs that
// complete, and deterministic cancellation errors.
//
// The faults here are *infrastructure* faults (the process misbehaving),
// distinct from the *simulated* faults of package faults and the
// adversaries of package adversary (the network misbehaving). Nothing in
// this package is used by production code paths; protocols and engines
// never import it.
package chaos

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/cogradio/crn/internal/sim"
)

// CancelAfterChecks returns a context that cancels itself after its Err
// method has been consulted n times: calls 1..n report the context alive,
// every later call reports context.Canceled. The engine consults the
// context exactly once per slot boundary, so CancelAfterChecks(n) cancels
// a single-engine run after exactly n fully executed slots — wall-clock
// plays no part, making cancellation tests deterministic.
//
// The Done channel closes when the cancellation trips. The context is
// safe for concurrent use, but slot-exactness only holds when one engine
// consults it (concurrent consumers race for the remaining checks).
func CancelAfterChecks(n int) context.Context {
	return &checkContext{remaining: n, done: make(chan struct{})}
}

type checkContext struct {
	mu        sync.Mutex
	remaining int
	closed    bool
	done      chan struct{}
}

func (c *checkContext) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *checkContext) Done() <-chan struct{}       { return c.done }
func (c *checkContext) Value(any) any               { return nil }

func (c *checkContext) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.remaining > 0 {
		c.remaining--
		return nil
	}
	if !c.closed {
		c.closed = true
		close(c.done)
	}
	return context.Canceled
}

// SlowAssignment wraps an assignment with deterministic scheduler drag:
// ChannelSet calls for nodes whose id is a multiple of Stride yield the
// processor Yields times before answering. Under a sharded engine scan
// this makes some shards run much slower than others — the load imbalance
// a slow core or a noisy neighbor would cause — without changing a single
// result byte: the wrapper adds no randomness and forwards the
// concurrency and slot-invariance capabilities of the wrapped assignment,
// so the engine shards exactly as it would have.
type SlowAssignment struct {
	sim.Assignment
	// Stride selects the slow nodes (every Stride-th id; <= 0 slows none).
	Stride int
	// Yields is the number of runtime.Gosched calls per slow lookup.
	Yields int
}

func (s *SlowAssignment) ChannelSet(node sim.NodeID, slot int) []int {
	if s.Stride > 0 && int(node)%s.Stride == 0 {
		for i := 0; i < s.Yields; i++ {
			runtime.Gosched()
		}
	}
	return s.Assignment.ChannelSet(node, slot)
}

// ConcurrentChannelSet forwards the wrapped assignment's concurrency
// declaration so sharded scans stay sharded under the drag.
func (s *SlowAssignment) ConcurrentChannelSet() bool {
	if ca, ok := s.Assignment.(sim.ConcurrentAssignment); ok {
		return ca.ConcurrentChannelSet()
	}
	return false
}

// SlotInvariantChannelSet forwards the wrapped assignment's slot-invariance
// declaration so sparse stepping stays available under the drag.
func (s *SlowAssignment) SlotInvariantChannelSet() bool {
	if sa, ok := s.Assignment.(sim.SlotInvariantAssignment); ok {
		return sa.SlotInvariantChannelSet()
	}
	return false
}

// LeakCheck snapshots the live goroutine count and returns a function that
// asserts the count settled back. Call it at the top of a test, defer the
// result. Drained worker pools unwind asynchronously after wg.Wait
// returns, so the check polls with a grace period before failing, and on
// failure dumps every goroutine stack.
func LeakCheck(t testing.TB) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		after := settleGoroutines(before, 2*time.Second)
		if after > before {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d before, %d after\n%s", before, after, buf[:n])
		}
	}
}

// VerifyNoLeaks runs a package's tests with a goroutine-leak gate around
// the whole run: use it from TestMain as os.Exit(chaos.VerifyNoLeaks(m)).
// A passing test run that leaves more goroutines than it started with
// (after a settle period) turns into a failure.
func VerifyNoLeaks(m *testing.M) int {
	before := runtime.NumGoroutine()
	code := m.Run()
	if code != 0 {
		return code
	}
	after := settleGoroutines(before, 3*time.Second)
	if after > before {
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		fmt.Fprintf(os.Stderr, "chaos: goroutine leak after tests: %d before, %d after\n%s\n", before, after, buf[:n])
		return 1
	}
	return code
}

// settleGoroutines polls the goroutine count until it drops to the target
// or the grace period expires, returning the final count.
func settleGoroutines(target int, grace time.Duration) int {
	deadline := time.Now().Add(grace)
	for {
		n := runtime.NumGoroutine()
		if n <= target || time.Now().After(deadline) {
			return n
		}
		time.Sleep(5 * time.Millisecond)
	}
}
