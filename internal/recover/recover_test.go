package recover_test

import (
	"reflect"
	"testing"

	"github.com/cogradio/crn/internal/assign"
	"github.com/cogradio/crn/internal/cogcast"
	"github.com/cogradio/crn/internal/cogcomp"
	"github.com/cogradio/crn/internal/faults"
	recov "github.com/cogradio/crn/internal/recover"
	"github.com/cogradio/crn/internal/sim"
)

func inputsFor(n int) []int64 {
	in := make([]int64, n)
	for i := range in {
		in[i] = int64(i*3 + 1)
	}
	return in
}

func phaseOneLen(asn sim.Assignment) int {
	return cogcomp.PhaseOneLength(asn.Nodes(), asn.PerNode(), asn.MinOverlap(), cogcast.DefaultKappa)
}

// TestFaultFreeMatchesClassic: with no fault schedule the supervisor must
// be draw-for-draw identical to the classic runner — same aggregate, same
// slot counts, same tree — with zero recovery activity.
func TestFaultFreeMatchesClassic(t *testing.T) {
	var classic cogcomp.Arena
	var rec recov.Arena
	for _, tc := range []struct {
		name    string
		n, c, k int
		full    bool
	}{
		{"full-overlap", 24, 6, 6, true},
		{"partitioned", 32, 8, 2, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(1); seed <= 5; seed++ {
				var asn sim.Assignment
				var err error
				if tc.full {
					asn, err = assign.FullOverlap(tc.n, tc.c, assign.LocalLabels, seed)
				} else {
					asn, err = assign.Partitioned(tc.n, tc.c, tc.k, assign.LocalLabels, seed)
				}
				if err != nil {
					t.Fatal(err)
				}
				in := inputsFor(tc.n)
				want, err := classic.Run(asn, 0, in, seed, cogcomp.Config{Check: true})
				if err != nil {
					t.Fatalf("seed %d: classic: %v", seed, err)
				}
				got, err := rec.Run(asn, 0, in, seed, recov.Config{Check: true})
				if err != nil {
					t.Fatalf("seed %d: recover: %v", seed, err)
				}
				if !got.Complete || got.Degraded || got.Stalled {
					t.Fatalf("seed %d: fault-free run flagged complete=%v degraded=%v stalled=%v",
						seed, got.Complete, got.Degraded, got.Stalled)
				}
				if got.Value != want.Value {
					t.Errorf("seed %d: value %v != classic %v", seed, got.Value, want.Value)
				}
				if got.TotalSlots != want.TotalSlots {
					t.Errorf("seed %d: slots %d != classic %d", seed, got.TotalSlots, want.TotalSlots)
				}
				if got.Phase1Slots != want.Phase1Slots || got.Phase2Slots != want.Phase2Slots ||
					got.Phase3Slots != want.Phase3Slots || got.Phase4Slots != want.Phase4Slots {
					t.Errorf("seed %d: phase breakdown (%d,%d,%d,%d) != classic (%d,%d,%d,%d)",
						seed, got.Phase1Slots, got.Phase2Slots, got.Phase3Slots, got.Phase4Slots,
						want.Phase1Slots, want.Phase2Slots, want.Phase3Slots, want.Phase4Slots)
				}
				if !reflect.DeepEqual(got.Parents, want.Parents) {
					t.Errorf("seed %d: distribution tree differs from classic", seed)
				}
				if got.Mediators != want.Mediators || got.MaxMessageSize != want.MaxMessageSize ||
					got.InformedAfterPhase1 != want.InformedAfterPhase1 {
					t.Errorf("seed %d: mediators/msg/informed (%d,%d,%d) != classic (%d,%d,%d)",
						seed, got.Mediators, got.MaxMessageSize, got.InformedAfterPhase1,
						want.Mediators, want.MaxMessageSize, want.InformedAfterPhase1)
				}
				if got.Retries != 0 || got.Reelections != 0 || got.Restarts != 0 ||
					got.DownSlots != 0 || got.Pruned != 0 {
					t.Errorf("seed %d: fault-free run reports recovery activity %+v", seed, got)
				}
				if len(got.Contributors) != tc.n {
					t.Errorf("seed %d: %d contributors, want all %d", seed, len(got.Contributors), tc.n)
				}
			}
		})
	}
}

// TestCensusCrashRestart: nodes crashed through the whole census window
// come back with their roster wiped; the supervisor must detect the
// deficient channels, re-execute the census, and still complete exactly.
func TestCensusCrashRestart(t *testing.T) {
	const n, c, seed = 20, 5, 3
	asn, err := assign.FullOverlap(n, c, assign.LocalLabels, seed)
	if err != nil {
		t.Fatal(err)
	}
	l := phaseOneLen(asn)
	sched, err := faults.NewBlackout(l, l+n, 5, 6, 11, 17)
	if err != nil {
		t.Fatal(err)
	}
	res, err := recov.Run(asn, 0, inputsFor(n), seed, recov.Config{Schedule: sched, Check: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatalf("census crash not recovered: degraded=%v stalled=%v pruned=%d",
			res.Degraded, res.Stalled, res.Pruned)
	}
	if res.Retries < 1 {
		t.Errorf("Retries = %d, want >= 1 (census re-execution)", res.Retries)
	}
	if res.Restarts < 1 {
		t.Errorf("Restarts = %d, want >= 1", res.Restarts)
	}
	if res.TotalSlots <= 2*l+n {
		t.Errorf("TotalSlots = %d does not reflect the extended census", res.TotalSlots)
	}
}

// TestRewindCrashRestart: crashes spanning the rewind wipe collected
// clusters; the supervisor re-anchors and replays the rewind. Across a few
// seeds at least one run must actually retry, and every run must end with
// the exact aggregate.
func TestRewindCrashRestart(t *testing.T) {
	const n, c = 20, 5
	var rec recov.Arena
	retried := 0
	for seed := int64(1); seed <= 4; seed++ {
		asn, err := assign.FullOverlap(n, c, assign.LocalLabels, seed)
		if err != nil {
			t.Fatal(err)
		}
		l := phaseOneLen(asn)
		sched, err := faults.NewBlackout(l+n, l+n+l, 3, 4, 9, 13)
		if err != nil {
			t.Fatal(err)
		}
		res, err := rec.Run(asn, 0, inputsFor(n), seed, recov.Config{Schedule: sched, Check: true})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Complete {
			t.Fatalf("seed %d: rewind crash not recovered (degraded=%v stalled=%v)",
				seed, res.Degraded, res.Stalled)
		}
		if res.Retries > 0 {
			retried++
		}
	}
	if retried == 0 {
		t.Error("no seed triggered a rewind retry; fault window looks inert")
	}
}

// TestMediatorReelection: a blackout over half the network at the start of
// the convergecast takes mediators down mid-coordination. The supervisor
// must re-elect and still finish with the exact aggregate; across the seed
// set at least one re-election must fire.
func TestMediatorReelection(t *testing.T) {
	const n, c, k = 16, 4, 2
	var rec recov.Arena
	reelected := 0
	for seed := int64(1); seed <= 6; seed++ {
		asn, err := assign.Partitioned(n, c, k, assign.LocalLabels, seed)
		if err != nil {
			t.Fatal(err)
		}
		l := phaseOneLen(asn)
		p4 := 2*l + n
		ids := make([]sim.NodeID, 0, n/2)
		for id := sim.NodeID(n / 2); id < sim.NodeID(n); id++ {
			ids = append(ids, id)
		}
		sched, err := faults.NewBlackout(p4, p4+150, ids...)
		if err != nil {
			t.Fatal(err)
		}
		res, err := rec.Run(asn, 0, inputsFor(n), seed, recov.Config{Schedule: sched, Check: true})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Stalled {
			t.Fatalf("seed %d: stalled despite recoverable blackout", seed)
		}
		if !res.Complete {
			t.Fatalf("seed %d: incomplete (pruned=%d degraded=%v)", seed, res.Pruned, res.Degraded)
		}
		reelected += res.Reelections
	}
	if reelected == 0 {
		t.Error("no mediator re-election across all seeds; detector looks inert")
	}
}

// TestPermanentOutageDegrades: nodes that never come up cannot be
// recovered. The supervisor must exhaust its budget, degrade gracefully,
// and report a partial-census aggregate over exactly the live nodes.
func TestPermanentOutageDegrades(t *testing.T) {
	const n, c, seed = 12, 4, 2
	asn, err := assign.FullOverlap(n, c, assign.LocalLabels, seed)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := faults.NewBlackout(0, 1<<30, 9, 10, 11)
	if err != nil {
		t.Fatal(err)
	}
	res, err := recov.Run(asn, 0, inputsFor(n), seed,
		recov.Config{Schedule: sched, Check: true, MaxRetries: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded || res.Complete {
		t.Fatalf("permanent outage not flagged: complete=%v degraded=%v", res.Complete, res.Degraded)
	}
	if res.Stalled {
		t.Fatal("degradation should settle, not stall")
	}
	want := make([]sim.NodeID, 0, n-3)
	var sum int64
	in := inputsFor(n)
	for i := 0; i < 9; i++ {
		want = append(want, sim.NodeID(i))
		sum += in[i]
	}
	if !reflect.DeepEqual(res.Contributors, want) {
		t.Fatalf("contributors %v, want %v", res.Contributors, want)
	}
	if got := res.Value.(int64); got != sum {
		t.Errorf("partial aggregate %d, want %d", got, sum)
	}
}

// TestRandomOutagesRecover: E20's outage model (random crash-restarts)
// against the supervisor. Every run must either complete exactly, degrade
// with a verified partial aggregate, or stall with the flag set — the
// invariant oracle (Check) vouches for the value in the first two cases.
func TestRandomOutagesRecover(t *testing.T) {
	const n, c, k = 32, 8, 2
	var rec recov.Arena
	restarts, completes := 0, 0
	const trials = 6
	for seed := int64(1); seed <= trials; seed++ {
		asn, err := assign.Partitioned(n, c, k, assign.LocalLabels, seed)
		if err != nil {
			t.Fatal(err)
		}
		sched, err := faults.NewRandomOutages(0.002, 10, seed, 0)
		if err != nil {
			t.Fatal(err)
		}
		res, err := rec.Run(asn, 0, inputsFor(n), seed, recov.Config{Schedule: sched, Check: true})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Stalled && !res.Degraded {
			t.Fatalf("seed %d: stalled run not flagged degraded", seed)
		}
		restarts += res.Restarts
		if res.Complete {
			completes++
		}
	}
	if restarts == 0 {
		t.Error("no crash-restart across all seeds; schedule looks inert")
	}
	if completes == 0 {
		t.Error("no run completed under mild outages; recovery looks broken")
	}
}

// TestDeterminism: identical parameters must reproduce identical results,
// recovery actions included.
func TestDeterminism(t *testing.T) {
	const n, c, k, seed = 16, 4, 2, 5
	asn, err := assign.Partitioned(n, c, k, assign.LocalLabels, seed)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := faults.NewRandomOutages(0.004, 8, seed, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := recov.Config{Schedule: sched, Check: true}
	var a, b recov.Arena
	r1, err := a.Run(asn, 0, inputsFor(n), seed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := b.Run(asn, 0, inputsFor(n), seed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("same seed, different results:\n%+v\n%+v", r1, r2)
	}
	// Arena reuse must not change the outcome either.
	r3, err := a.Run(asn, 0, inputsFor(n), seed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r3) {
		t.Fatalf("warm arena diverged:\n%+v\n%+v", r1, r3)
	}
}

// TestValidation: parameter errors surface as errors, not panics.
func TestValidation(t *testing.T) {
	asn, err := assign.FullOverlap(4, 2, assign.LocalLabels, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := recov.Run(asn, 9, inputsFor(4), 1, recov.Config{}); err == nil {
		t.Error("out-of-range source accepted")
	}
	if _, err := recov.Run(asn, 0, inputsFor(3), 1, recov.Config{}); err == nil {
		t.Error("short input vector accepted")
	}
}
