// Package recover wraps a COGCOMP execution in a crash-restart recovery
// supervisor, so aggregation completes correctly even when nodes crash
// and restart mid-protocol (DESIGN.md §7).
//
// The paper's COGCOMP (Section 6) schedules four tightly coupled phases;
// a single missed slot can silently corrupt the census or the mediated
// convergecast (experiment E20 measures exactly that). The supervisor
// restores correctness by structuring the run into epochs, one per phase,
// each ending in a checkpoint of per-node durable state. The durability
// model is WAL-before-use — every protocol fact survives a crash; what a
// crash costs is the slots spent down:
//
//	epoch 1  broadcast   the phase-one action log (a WAL; missed slots
//	                     are padded so the rewind stays slot-aligned)
//	epoch 2  census      roster entries, logged on receipt; a restart
//	                     only loses the transient sent-successfully bit,
//	                     so the node re-announces (peers dedup)
//	epoch 3  rewind      collected clusters, logged on receipt
//	epoch 4  convergecast micro-checkpointed: every merge and ack is
//	                     WAL-backed before it is acknowledged, so a
//	                     phase-four restart loses nothing
//
// At each epoch boundary the supervisor checks phase progress against the
// durable ground truth. A deficient epoch is re-executed — bounded retries
// with exponential backoff — by extending the phase window and resetting
// the affected nodes to their last checkpoint. A mediator that dies in
// phase four is re-elected from its channel's census. When the retry
// budget is exhausted the run degrades gracefully: unrecoverable nodes are
// pruned (with their subtrees) and the source reports a partial-census
// aggregate with the explicit Degraded flag set.
//
// The supervisor models a reliable control plane (in deployment terms: a
// coordination service that is failure-isolated from the radios). It reads
// nodes' durable state and applies recovery actions between slots, but
// never injects messages into the radio channel — all on-air behavior is
// still the protocol's own.
//
// Fault-free runs are draw-for-draw identical to the classic
// cogcomp.Run: the supervisor drives the same engine slot loop, every
// boundary check passes, and no recovery action fires. Assignments must be
// static, exactly as for COGCOMP itself.
package recover

import (
	"context"
	"fmt"
	"sort"

	"github.com/cogradio/crn/internal/aggfunc"
	"github.com/cogradio/crn/internal/backoff"
	"github.com/cogradio/crn/internal/cogcomp"
	"github.com/cogradio/crn/internal/faults"
	"github.com/cogradio/crn/internal/invariant"
	"github.com/cogradio/crn/internal/sim"
	"github.com/cogradio/crn/internal/trace"
)

const (
	// DefaultMaxRetries bounds re-executions per epoch (and fruitless
	// stall-recovery rounds in epoch four) when Config.MaxRetries is zero.
	DefaultMaxRetries = 8
	// DefaultBackoff is the initial backoff gap in slots when
	// Config.Backoff is zero; it doubles per retry of the same epoch.
	DefaultBackoff = 8
	// maxBackoffGap caps the exponential backoff.
	maxBackoffGap = 4096
)

// Config configures a recovered COGCOMP run. The zero value computes a sum
// fault-free with default budgets.
type Config struct {
	// Kappa scales phase one's length (see cogcast.SlotBound). Zero means
	// cogcast.DefaultKappa.
	Kappa float64
	// Func is the aggregate to compute. Nil means aggfunc.Sum.
	Func aggfunc.Func
	// MaxSlots bounds the whole execution including retries. Zero picks a
	// budget covering the full retry schedule. Exhausting it does not fail
	// the run: the supervisor gives up and reports Stalled.
	MaxSlots int
	// Schedule, when non-nil, injects crash-restart faults: every node is
	// wrapped in a faults.Crasher with WithRestart, so outages cost missed
	// slots and force recovery per the durability model above. Nil runs
	// fault-free.
	Schedule faults.Schedule
	// MaxRetries bounds re-executions per epoch. Zero means
	// DefaultMaxRetries.
	MaxRetries int
	// Observer, when non-nil, receives every slot's channel outcomes
	// (cogcomp.Config.Observer, tee'd before the trace recorder and the
	// checker). Reactive adversaries observe the supervised run through
	// it; pairing it with an adversarial Schedule closes their loop.
	Observer sim.Observer
	// Backoff is the initial backoff gap in slots before an epoch retry,
	// doubling per attempt up to a cap. Zero means DefaultBackoff.
	Backoff int
	// Trace, when non-nil, additionally receives the recovery event stream:
	// epoch starts, per-node checkpoints, retries, mediator re-elections,
	// and node restarts, interleaved with the usual COGCOMP events.
	Trace trace.Sink
	// Check attaches the invariant oracle plus the recovery-safety checks:
	// no duplicate contribution after a retry, and checkpoint-log
	// monotonicity. A violation fails the run.
	Check bool
	// Shards splits the engine's per-slot protocol scan across that many
	// goroutines (sim.WithShards). Results are byte-identical at any value;
	// 0 or 1 means serial.
	Shards int
	// Context, when non-nil, is checked at every slot boundary of the
	// supervised run (sim.WithContext): a done context stops the run with
	// a *sim.Interrupted error. Unlike slot-budget exhaustion — which the
	// supervisor absorbs into a Stalled result — an interrupt propagates
	// as an error, wrapped with the supervisor's slot accounting.
	Context context.Context
}

// Result reports one recovered COGCOMP execution.
type Result struct {
	// Value is the aggregate held by the source at termination. When
	// Degraded it covers only Contributors; when Stalled it is the
	// source's partial state and carries no guarantee.
	Value aggfunc.Value
	// Complete reports that every node contributed (fault-free semantics).
	Complete bool
	// Degraded reports that recovery could not restore full participation:
	// some nodes were pruned (or the run stalled) and Value is a
	// partial-census aggregate.
	Degraded bool
	// Stalled reports that phase four stopped making progress and the
	// retry budget ran out; Contributors is nil because the supervisor can
	// no longer vouch for the merge set.
	Stalled bool
	// Contributors lists the nodes whose inputs Value aggregates, in
	// ascending id order (all n when Complete; nil when Stalled).
	Contributors []sim.NodeID
	// TotalSlots is the number of slots until the run ended.
	TotalSlots int
	// Phase1Slots .. Phase4Slots break the run down per epoch, including
	// any retry extensions and backoff gaps.
	Phase1Slots, Phase2Slots, Phase3Slots, Phase4Slots int
	// InformedAfterPhase1 counts nodes holding INIT when epoch one ended.
	InformedAfterPhase1 int
	// Parents is the distribution tree (sim.None for source/uninformed).
	Parents []sim.NodeID
	// MaxMessageSize is the largest phase-four value message any node sent.
	MaxMessageSize int
	// Mediators counts nodes holding the mediator role at termination.
	Mediators int
	// Retries counts epoch re-executions and stall-recovery rounds.
	Retries int
	// Reelections counts mediator re-elections.
	Reelections int
	// Restarts counts node crash-restarts (zero fault-free).
	Restarts int
	// DownSlots sums the slots nodes spent offline.
	DownSlots int
	// Pruned counts nodes removed by graceful degradation.
	Pruned int
}

// Arena holds the reusable pieces of a recovered execution so repeated
// trials avoid rebuilding nodes and engine. The zero value is ready to
// use. Not safe for concurrent use; parallel trial runners keep one per
// worker.
type Arena struct {
	comp       cogcomp.Arena
	crashers   []*faults.Crasher
	pruned     []bool
	ckpts      []invariant.Checkpoint
	gen        int
	forceCheck bool
	infSlots   []int
	groups     [][]sim.NodeID
	scratch    []sim.NodeID
}

// SetCheck forces invariant checking for every subsequent Run on this
// arena, regardless of Config.Check.
func (a *Arena) SetCheck(on bool) {
	a.forceCheck = on
	a.comp.SetCheck(on)
}

// SetContext attaches a context to every subsequent Run on this arena that
// does not carry its own Config.Context (see cogcast.Arena.SetContext).
func (a *Arena) SetContext(ctx context.Context) { a.comp.SetContext(ctx) }

// run is the per-execution supervisor state.
type run struct {
	a      *Arena
	cfg    Config
	asn    sim.Assignment
	source sim.NodeID
	inputs []int64
	nodes  []*cogcomp.Node
	eng    *sim.Engine
	f      aggfunc.Func

	n, l                int
	maxSlots            int
	maxRetries, backoff int

	p1end, p2end, p3end int // epoch boundaries, moved by retries

	retries, reelections int
	degraded, stalled    bool
	srcDoneSlot          int
}

// Run executes COGCOMP under the recovery supervisor, reusing the arena.
func (a *Arena) Run(asn sim.Assignment, source sim.NodeID, inputs []int64, seed int64, cfg Config) (*Result, error) {
	n := asn.Nodes()
	var wrap func(sim.NodeID, *cogcomp.Node) sim.Protocol
	if cfg.Schedule != nil {
		if cap(a.crashers) < n {
			a.crashers = make([]*faults.Crasher, n)
		}
		a.crashers = a.crashers[:n]
		wrap = func(id sim.NodeID, nd *cogcomp.Node) sim.Protocol {
			c := faults.Wrap(nd, id, cfg.Schedule, faults.WithTrace(cfg.Trace), faults.WithRestart())
			a.crashers[id] = c
			return c
		}
	} else {
		a.crashers = a.crashers[:0]
	}
	ccfg := cogcomp.Config{Kappa: cfg.Kappa, Func: cfg.Func, Observer: cfg.Observer, Trace: cfg.Trace, Check: cfg.Check, Shards: cfg.Shards, Context: cfg.Context}
	if cfg.Schedule != nil && cfg.Trace != nil {
		// Traced fault runs must stay serial: crashers emit fault/restart
		// events from inside Step, and a sharded scan would interleave them
		// nondeterministically in the trace.
		ccfg.Shards = 1
	}
	nodes, eng, l, err := a.comp.Prepare(asn, source, inputs, seed, ccfg, wrap)
	if err != nil {
		return nil, fmt.Errorf("recover: %w", err)
	}
	f := cfg.Func
	if f == nil {
		f = aggfunc.Sum{}
	}
	maxRetries := cfg.MaxRetries
	if maxRetries == 0 {
		maxRetries = DefaultMaxRetries
	}
	backoff := cfg.Backoff
	if backoff == 0 {
		backoff = DefaultBackoff
	}
	maxSlots := cfg.MaxSlots
	if maxSlots == 0 {
		// Cover the full retry schedule: every epoch re-executed to the
		// budget, plus the capped backoff gaps.
		maxSlots = (maxRetries+4)*cogcomp.DefaultMaxSlots(n, l) + 3*maxBackoffGap
	}
	if cap(a.pruned) < n {
		a.pruned = make([]bool, n)
	}
	a.pruned = a.pruned[:n]
	for i := range a.pruned {
		a.pruned[i] = false
	}
	a.ckpts = a.ckpts[:0]
	a.gen = 0

	r := &run{
		a: a, cfg: cfg, asn: asn, source: source, inputs: inputs,
		nodes: nodes, eng: eng, f: f,
		n: n, l: l, maxSlots: maxSlots,
		maxRetries: maxRetries, backoff: backoff,
		p1end:       l,
		srcDoneSlot: -1,
	}
	if err := r.supervise(); err != nil {
		return nil, err
	}
	return r.finish()
}

// Run executes one recovered COGCOMP run with a fresh arena.
func Run(asn sim.Assignment, source sim.NodeID, inputs []int64, seed int64, cfg Config) (*Result, error) {
	return new(Arena).Run(asn, source, inputs, seed, cfg)
}

// supervise drives the engine through the four epochs. A sim.ErrMaxSlots
// anywhere turns into a stalled (not failed) run; a *sim.Interrupted
// (context cancel or deadline) is a real error and propagates wrapped, so
// callers can still errors.As it out.
func (r *run) supervise() error {
	for _, epoch := range []func() error{r.epoch1, r.epoch2, r.epoch3, r.epoch4} {
		if err := epoch(); err != nil {
			if err == sim.ErrMaxSlots {
				r.stalled = true
				return nil
			}
			return fmt.Errorf("recover: %w (after %d slots; l=%d n=%d)", err, r.eng.Slot(), r.l, r.n)
		}
		if r.stalled {
			return nil
		}
	}
	return nil
}

// --- Engine plumbing ---------------------------------------------------------

func (r *run) emit(ev trace.Event) {
	if r.cfg.Trace != nil {
		r.cfg.Trace.Emit(ev)
	}
}

// runUntil advances the engine to the boundary slot (exclusive), stopping
// early if every node terminated.
func (r *run) runUntil(until int) error {
	for r.eng.Slot() < until && !r.eng.AllDone() {
		if r.eng.Slot() >= r.maxSlots {
			return sim.ErrMaxSlots
		}
		if err := r.eng.RunSlot(); err != nil {
			return err
		}
		if r.srcDoneSlot < 0 && r.nodes[r.source].Done() {
			r.srcDoneSlot = r.eng.Slot()
		}
	}
	return nil
}

// gap returns the backoff gap for the attempt-th retry (0-based).
func (r *run) gap(attempt int) int {
	return backoff.RetryGap(r.backoff, attempt, maxBackoffGap)
}

// phys returns the physical channel an informed non-source node censuses
// on. Valid for static assignments only (COGCOMP's own requirement).
func (r *run) phys(id sim.NodeID) int {
	return r.asn.ChannelSet(id, 0)[r.nodes[id].InformedChannel()]
}

// down reports whether the node is currently crashed.
func (r *run) down(id sim.NodeID) bool {
	return len(r.a.crashers) > 0 && r.a.crashers[id] != nil && r.a.crashers[id].Down()
}

// commit checkpoints every surviving participant at an epoch boundary.
func (r *run) commit(epoch int) {
	r.a.gen++
	slot := r.eng.Slot()
	for i, nd := range r.nodes {
		if r.a.pruned[i] || !nd.Informed() {
			continue
		}
		r.a.ckpts = append(r.a.ckpts, invariant.Checkpoint{
			Node: sim.NodeID(i), Epoch: epoch, Gen: r.a.gen, Slot: slot,
		})
		r.emit(trace.CheckpointEvent(slot, i, epoch, r.a.gen))
	}
}

// --- Epoch 1: broadcast ------------------------------------------------------

func (r *run) informedCount() int {
	informed := 0
	for _, nd := range r.nodes {
		if nd.Informed() {
			informed++
		}
	}
	return informed
}

// epoch1 runs phase one, extending the window while nodes remain
// uninformed. The action log is the WAL: crashed nodes pad missed slots
// and resume recording, so the eventual rewind stays slot-aligned.
func (r *run) epoch1() error {
	r.emit(trace.PhaseEvent(0, 1, r.l))
	r.emit(trace.EpochEvent(0, 1, r.l))
	for attempt := 0; ; attempt++ {
		if err := r.runUntil(r.p1end); err != nil {
			return err
		}
		if r.informedCount() == r.n || attempt >= r.maxRetries {
			break
		}
		r.retries++
		r.emit(trace.RetryEvent(r.eng.Slot(), 1, attempt+1))
		for _, nd := range r.nodes {
			nd.ExtendPhase1(r.l)
		}
		r.p1end += r.l
	}
	if r.informedCount() < r.n {
		// Unreachable nodes withdraw on their own in phase two; the run is
		// degraded but the informed subtree still aggregates.
		r.degraded = true
	}
	r.p2end = r.p1end + r.n
	r.commit(1)
	return nil
}

// --- Epoch 2: census ---------------------------------------------------------

// censusGroups rebuilds the per-physical-channel groups of surviving
// informed non-source nodes.
func (r *run) censusGroups() {
	c := r.asn.Channels()
	if cap(r.a.groups) < c {
		r.a.groups = make([][]sim.NodeID, c)
	}
	r.a.groups = r.a.groups[:c]
	for ch := range r.a.groups {
		r.a.groups[ch] = r.a.groups[ch][:0]
	}
	for i, nd := range r.nodes {
		if sim.NodeID(i) == r.source || r.a.pruned[i] || !nd.Informed() {
			continue
		}
		ch := r.phys(sim.NodeID(i))
		r.a.groups[ch] = append(r.a.groups[ch], sim.NodeID(i))
	}
}

// censusCovers reports whether id's roster holds a correct entry for every
// group member the keep filter accepts.
func (r *run) censusCovers(id sim.NodeID, group []sim.NodeID, keep func(sim.NodeID) bool) bool {
	matched := 0
	want := 0
	for _, gid := range group {
		if keep == nil || keep(gid) {
			want++
		}
	}
	r.nodes[id].RosterSnapshot(func(rid sim.NodeID, rr int) {
		for _, gid := range group {
			if gid == rid && (keep == nil || keep(gid)) && r.nodes[gid].InformedSlot() == rr {
				matched++
				return
			}
		}
	})
	return matched == want
}

// censusDeficient returns the channels whose census did not complete: some
// member has not succeeded its broadcast, or rosters disagree with the
// durable membership. Rebuilds the channel groups as a side effect.
func (r *run) censusDeficient() []int {
	r.censusGroups()
	var out []int
	for ch, group := range r.a.groups {
		if len(group) == 0 {
			continue
		}
		for _, id := range group {
			if !r.nodes[id].CensusDone() || !r.censusCovers(id, group, nil) {
				out = append(out, ch)
				break
			}
		}
	}
	return out
}

// epoch2 runs the census, re-executing it on deficient channels: the
// supervisor holds the network quiet for a backoff gap, resets the
// channel's nodes to their epoch-1 checkpoint (roster wiped, broadcast
// re-armed), and extends the census window. Exhausting the budget prunes
// the nodes that cannot be restored, plus their subtrees.
func (r *run) epoch2() error {
	r.emit(trace.PhaseEvent(r.p1end, 2, r.n))
	r.emit(trace.EpochEvent(r.p1end, 2, r.n))
	for attempt := 0; ; attempt++ {
		if err := r.runUntil(r.p2end); err != nil {
			return err
		}
		deficient := r.censusDeficient()
		if len(deficient) == 0 {
			break
		}
		if attempt >= r.maxRetries {
			r.pruneCensus(deficient)
			break
		}
		r.retries++
		r.emit(trace.RetryEvent(r.eng.Slot(), 2, attempt+1))
		gap := r.gap(attempt)
		for _, ch := range deficient {
			for _, id := range r.a.groups[ch] {
				r.nodes[id].ResetCensus()
			}
		}
		for _, nd := range r.nodes {
			nd.Hold(r.p2end + gap)
			nd.ExtendCensus(gap + r.n)
		}
		r.p2end += gap + r.n
	}
	r.p3end = r.p2end + r.p1end
	r.commit(2)
	return nil
}

// pruneCensus removes, per deficient channel, the members outside the
// greatest fixpoint of "census complete among the kept set", then cascades
// to their subtrees and scrubs survivors' rosters so phase three derives a
// consistent (smaller) cluster structure.
func (r *run) pruneCensus(deficient []int) {
	for _, ch := range deficient {
		group := r.a.groups[ch]
		kept := func(id sim.NodeID) bool { return !r.a.pruned[id] }
		for changed := true; changed; {
			changed = false
			for _, id := range group {
				if r.a.pruned[id] {
					continue
				}
				if !r.nodes[id].CensusDone() || !r.censusCovers(id, group, kept) {
					r.a.pruned[id] = true
					changed = true
				}
			}
		}
	}
	r.cascadePrune()
	for i := range r.nodes {
		if !r.a.pruned[i] {
			continue
		}
		r.nodes[i].Withdraw()
		for j, nd := range r.nodes {
			if !r.a.pruned[j] {
				nd.DropRosterEntry(sim.NodeID(i))
			}
		}
	}
	r.degraded = true
}

// cascadePrune extends the pruned set to every descendant of a pruned
// node: their contributions would have routed through it.
func (r *run) cascadePrune() {
	for changed := true; changed; {
		changed = false
		for i, nd := range r.nodes {
			if r.a.pruned[i] || sim.NodeID(i) == r.source || !nd.Informed() {
				continue
			}
			if p := nd.Parent(); p != sim.None && r.a.pruned[p] {
				r.a.pruned[i] = true
				changed = true
			}
		}
	}
}

// --- Epoch 3: rewind ---------------------------------------------------------

// rewindCluster is one (informer, phase-one slot) cluster as derived from
// the nodes' durable state.
type rewindCluster struct {
	informer sim.NodeID
	r        int
	members  []sim.NodeID
}

// rewindClusters derives the expected cluster structure from the durable
// tree: surviving informed nodes grouped by (parent, informed slot).
func (r *run) rewindClusters() []rewindCluster {
	var out []rewindCluster
	for i := range r.nodes {
		if r.a.pruned[i] || !r.nodes[i].Informed() {
			continue
		}
		byR := make(map[int][]sim.NodeID)
		var rs []int
		for j, cnd := range r.nodes {
			if j == i || r.a.pruned[j] || sim.NodeID(j) == r.source || !cnd.Informed() {
				continue
			}
			if cnd.Parent() != sim.NodeID(i) {
				continue
			}
			r0 := cnd.InformedSlot()
			if _, ok := byR[r0]; !ok {
				rs = append(rs, r0)
			}
			byR[r0] = append(byR[r0], sim.NodeID(j))
		}
		sort.Ints(rs)
		for _, r0 := range rs {
			out = append(out, rewindCluster{informer: sim.NodeID(i), r: r0, members: byR[r0]})
		}
	}
	return out
}

// deficientClusters returns the clusters whose informer is missing a
// correctly sized collected entry.
func (r *run) deficientClusters(clusters []rewindCluster) []rewindCluster {
	var out []rewindCluster
	for _, cl := range clusters {
		ok := false
		r.nodes[cl.informer].CollectedSnapshot(func(cr, _, size int) {
			if cr == cl.r && size == len(cl.members) {
				ok = true
			}
		})
		if !ok {
			out = append(out, cl)
		}
	}
	return out
}

// epoch3 runs the rewind, re-anchoring and replaying it while informers
// are missing clusters. Exhausting the budget prunes the orphaned
// clusters and re-elects mediators their pruning invalidated.
func (r *run) epoch3() error {
	r.emit(trace.PhaseEvent(r.p2end, 3, r.p1end))
	r.emit(trace.EpochEvent(r.p2end, 3, r.p1end))
	for attempt := 0; ; attempt++ {
		if err := r.runUntil(r.p3end); err != nil {
			return err
		}
		deficient := r.deficientClusters(r.rewindClusters())
		if len(deficient) == 0 {
			break
		}
		if attempt >= r.maxRetries {
			r.pruneRewind(deficient)
			break
		}
		r.retries++
		r.emit(trace.RetryEvent(r.eng.Slot(), 3, attempt+1))
		// Re-anchor the rewind past a backoff gap: slots before the new
		// base map out of range and nodes idle through them, so the gap
		// needs no explicit hold.
		base := r.p3end + r.gap(attempt)
		for _, nd := range r.nodes {
			if !nd.Done() {
				nd.RetryRewind(base)
			}
		}
		r.p3end = base + r.p1end
	}
	r.commit(3)
	return nil
}

// pruneRewind drops the orphaned clusters: members withdrawn (with their
// subtrees), the informer's stale entry removed, mediator schedules
// scrubbed, and dead mediator roles re-elected.
func (r *run) pruneRewind(deficient []rewindCluster) {
	was := append([]bool(nil), r.a.pruned...)
	for _, cl := range deficient {
		for _, id := range cl.members {
			r.a.pruned[id] = true
		}
		if !r.a.pruned[cl.informer] {
			r.nodes[cl.informer].DropCollected(cl.r)
		}
	}
	r.cascadePrune()
	for i := range r.nodes {
		if !r.a.pruned[i] || was[i] {
			continue
		}
		r.nodes[i].Withdraw()
		for j, nd := range r.nodes {
			if !r.a.pruned[j] && nd.IsMediator() {
				nd.DropMedMember(sim.NodeID(i))
			}
		}
	}
	r.reelectMediators()
	r.degraded = true
}

// --- Epoch 4: convergecast ---------------------------------------------------

// epoch4 runs the convergecast to completion under a no-progress detector:
// when a window passes without any node advancing, the supervisor
// reconciles lost acks against parents' durable merge logs and re-elects
// mediators for channels left without one. MaxRetries fruitless rounds in
// a row end the run as Stalled.
func (r *run) epoch4() error {
	r.emit(trace.PhaseEvent(r.p3end, 4, 0))
	r.emit(trace.EpochEvent(r.p3end, 4, 0))
	window := 3 * r.n
	if window < 24 {
		window = 24
	}
	last := -1
	strikes := 0
	for {
		if r.eng.AllDone() {
			break
		}
		if r.srcDoneSlot >= 0 && r.eng.Slot() >= r.srcDoneSlot+3 {
			// The source holds its final aggregate; only zombie helpers
			// remain (e.g. permanently crashed nodes that cannot hear
			// their ack). The run's outcome is decided.
			break
		}
		if r.eng.Slot() >= r.maxSlots {
			r.stalled = true
			break
		}
		target := r.eng.Slot() + window
		if err := r.runUntil(target); err != nil {
			return err
		}
		prog := 0
		for _, nd := range r.nodes {
			prog += nd.Progress()
		}
		if prog > last {
			last = prog
			strikes = 0
			continue
		}
		strikes++
		if strikes > r.maxRetries {
			r.stalled = true
			break
		}
		r.retries++
		r.emit(trace.RetryEvent(r.eng.Slot(), 4, strikes))
		r.reconcileAcks()
		r.reelectMediators()
	}
	if r.stalled {
		r.degraded = true
	}
	r.commit(4)
	return nil
}

// reconcileAcks repairs lost phase-four acknowledgements against the
// durable ground truth: a parent's merge log (WAL-backed before the ack is
// sent) proves delivery, so a sender whose ack was lost is marked sent and
// its mediator's pending set is settled — without re-merging anything.
func (r *run) reconcileAcks() {
	for i, nd := range r.nodes {
		if sim.NodeID(i) == r.source || r.a.pruned[i] || nd.Done() || !nd.Informed() || nd.OwnSent() {
			continue
		}
		if p := nd.Parent(); p != sim.None && r.nodes[p].HasMerged(sim.NodeID(i)) {
			nd.MarkOwnSent()
		}
	}
	for _, nd := range r.nodes {
		if nd.MedRemaining() == 0 {
			continue
		}
		r.a.scratch = r.a.scratch[:0]
		nd.MedPending(func(id sim.NodeID) { r.a.scratch = append(r.a.scratch, id) })
		sort.Slice(r.a.scratch, func(x, y int) bool { return r.a.scratch[x] < r.a.scratch[y] })
		for _, id := range r.a.scratch {
			p := r.nodes[id].Parent()
			if r.a.pruned[id] || (p != sim.None && r.nodes[p].HasMerged(id)) {
				nd.MarkMedAcked(id)
			}
		}
	}
}

// reelectMediators restores coordination on channels that still have
// members awaiting their turn but whose mediator is dead or was never
// established (a node down through all of phase three never elects
// itself). The replacement — the smallest live census-complete id on the
// channel — rebuilds the schedule from its own durable roster and
// fast-forwards past clusters already acknowledged.
func (r *run) reelectMediators() {
	r.censusGroups()
	for ch, group := range r.a.groups {
		needed := false
		for _, id := range group {
			if !r.nodes[id].Done() && !r.nodes[id].OwnSent() {
				needed = true
				break
			}
		}
		if !needed {
			continue
		}
		med := sim.None
		for _, id := range group {
			if r.nodes[id].IsMediator() {
				med = id
				break
			}
		}
		if med != sim.None && !r.down(med) {
			continue // alive; reconciliation or plain retries will progress
		}
		repl := sim.None
		for _, id := range group { // ascending id: smallest wins
			if id == med || r.down(id) || r.nodes[id].Done() || !r.nodes[id].CensusDone() {
				continue
			}
			repl = id
			break
		}
		if repl == sim.None {
			continue
		}
		old := -1
		if med != sim.None {
			old = int(med)
			r.nodes[med].Demote()
		}
		r.nodes[repl].AssumeMediator(
			func(id sim.NodeID) bool { return r.nodes[id].OwnSent() },
			func(id sim.NodeID) bool { return r.a.pruned[id] },
		)
		r.reelections++
		r.emit(trace.ReelectEvent(r.eng.Slot(), ch, int(repl), old))
	}
}

// --- Result assembly ---------------------------------------------------------

func (r *run) finish() (*Result, error) {
	total := r.eng.Slot()
	res := &Result{
		Value:       r.nodes[r.source].Aggregate(),
		TotalSlots:  total,
		Phase1Slots: r.p1end,
		Retries:     r.retries,
		Reelections: r.reelections,
		Stalled:     r.stalled,
		Degraded:    r.degraded,
		Parents:     make([]sim.NodeID, r.n),
	}
	if r.p2end > 0 {
		res.Phase2Slots = r.p2end - r.p1end
	}
	if r.p3end > 0 {
		res.Phase3Slots = r.p3end - r.p2end
		if res.Phase4Slots = total - r.p3end; res.Phase4Slots < 0 {
			res.Phase4Slots = 0
		}
	}
	informed := 0
	prunedCount := 0
	for i, nd := range r.nodes {
		if nd.Informed() {
			informed++
		}
		res.Parents[i] = nd.Parent()
		if nd.MaxMessageSize() > res.MaxMessageSize {
			res.MaxMessageSize = nd.MaxMessageSize()
		}
		if nd.IsMediator() {
			res.Mediators++
		}
		if r.a.pruned[i] {
			prunedCount++
		}
	}
	res.InformedAfterPhase1 = informed
	res.Pruned = prunedCount
	res.Complete = informed == r.n && prunedCount == 0 && !r.stalled
	if !r.stalled {
		for i, nd := range r.nodes {
			if nd.Informed() && !r.a.pruned[i] {
				res.Contributors = append(res.Contributors, sim.NodeID(i))
			}
		}
	}
	for _, c := range r.a.crashers {
		res.Restarts += c.Restarts()
		res.DownSlots += c.DownSlots()
	}
	r.emit(trace.CensusEvent(total, informed, res.Mediators))

	if r.cfg.Check || r.a.forceCheck {
		if err := r.check(res, informed); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// check runs the invariant oracle verdicts plus the recovery-safety
// checks over the finished run.
func (r *run) check(res *Result, informed int) error {
	a := r.a
	if checker := a.comp.Checker(); checker != nil {
		if err := checker.Err(); err != nil {
			return fmt.Errorf("recover: slot oracle (%d violations): %w", checker.Violations(), err)
		}
	}
	if cap(a.infSlots) < r.n {
		a.infSlots = make([]int, r.n)
	}
	a.infSlots = a.infSlots[:r.n]
	for i, nd := range r.nodes {
		a.infSlots[i] = nd.InformedSlot()
	}
	if err := invariant.CheckBroadcastTree(r.n, r.source, res.Parents, a.infSlots, informed == r.n); err != nil {
		return fmt.Errorf("recover: %w", err)
	}
	if res.Complete {
		if err := invariant.CheckCensus(r.n, r.asn.Channels(), informed, res.Mediators, true); err != nil {
			return fmt.Errorf("recover: %w", err)
		}
	}
	if !res.Stalled {
		if err := invariant.CheckContribution(r.f, r.inputs, res.Contributors, res.Value); err != nil {
			return fmt.Errorf("recover: %w", err)
		}
	}
	if err := invariant.CheckCheckpointLog(a.ckpts); err != nil {
		return fmt.Errorf("recover: %w", err)
	}
	return nil
}
