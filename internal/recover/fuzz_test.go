package recover_test

import (
	"testing"

	"github.com/cogradio/crn/internal/assign"
	"github.com/cogradio/crn/internal/faults"
	recov "github.com/cogradio/crn/internal/recover"
	"github.com/cogradio/crn/internal/sim"
)

// scriptedSchedule replays crash spans decoded from fuzz input: byte
// triples of (node, start, duration), so the fuzzer controls exactly who
// crashes when and for how long.
type scriptedSchedule struct {
	spans [][3]int // node, from, until
}

var _ faults.Schedule = (*scriptedSchedule)(nil)

func decodeSchedule(data []byte, n int) *scriptedSchedule {
	s := &scriptedSchedule{}
	for i := 0; i+2 < len(data) && len(s.spans) < 24; i += 3 {
		node := int(data[i]) % n
		from := int(data[i+1]) * 4 // reach well into phase four
		dur := int(data[i+2])%96 + 1
		s.spans = append(s.spans, [3]int{node, from, from + dur})
	}
	return s
}

func (s *scriptedSchedule) Name() string { return "scripted" }

func (s *scriptedSchedule) Up(node sim.NodeID, slot int) bool {
	for _, sp := range s.spans {
		if int(node) == sp[0] && slot >= sp[1] && slot < sp[2] {
			return false
		}
	}
	return true
}

// FuzzRecovery feeds arbitrary crash-restart scripts to the supervisor
// with the full invariant oracle armed: whatever the schedule, the run
// must terminate without error, never double-count a contribution, keep
// the checkpoint log monotone, and flag degradation honestly.
func FuzzRecovery(f *testing.F) {
	f.Add([]byte{}, int64(1))
	f.Add([]byte{3, 10, 40}, int64(2))
	f.Add([]byte{1, 30, 90, 5, 30, 90, 9, 30, 90}, int64(3))
	f.Add([]byte{2, 0, 255, 7, 60, 80, 7, 90, 80, 11, 5, 5}, int64(4))
	f.Add([]byte{4, 100, 96, 5, 100, 96, 6, 100, 96, 4, 140, 96}, int64(5))

	const n, c = 12, 4
	var rec recov.Arena
	f.Fuzz(func(t *testing.T, data []byte, seed int64) {
		asn, err := assign.FullOverlap(n, c, assign.LocalLabels, seed)
		if err != nil {
			t.Skip()
		}
		sched := decodeSchedule(data, n)
		in := make([]int64, n)
		for i := range in {
			in[i] = int64(i + 1)
		}
		res, err := rec.Run(asn, 0, in, seed, recov.Config{
			Schedule:   sched,
			Check:      true,
			MaxRetries: 3,
		})
		if err != nil {
			t.Fatalf("schedule %v: %v", sched.spans, err)
		}
		if res.Stalled && !res.Degraded {
			t.Fatal("stalled run not flagged degraded")
		}
		if res.Complete && (res.Degraded || len(res.Contributors) != n) {
			t.Fatalf("complete run inconsistent: degraded=%v contributors=%d",
				res.Degraded, len(res.Contributors))
		}
		if !res.Stalled && len(res.Contributors) == 0 {
			t.Fatal("settled run reports no contributors")
		}
	})
}
