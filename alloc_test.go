package crn_test

import (
	"testing"

	"github.com/cogradio/crn/internal/assign"
	"github.com/cogradio/crn/internal/cogcast"
	"github.com/cogradio/crn/internal/invariant"
	"github.com/cogradio/crn/internal/metrics"
	"github.com/cogradio/crn/internal/sim"
	"github.com/cogradio/crn/internal/trace"
)

// steadyStateEngine builds a 256-node COGCAST network where every node is
// already informed — the configuration BenchmarkEngineSlot measures — and
// warms it up so lazily-grown scratch has reached its final size.
func steadyStateEngine(t *testing.T, opts ...sim.Option) *sim.Engine {
	t.Helper()
	const n, c = 256, 16
	asn, err := assign.SharedCore(n, c, 4, 48, assign.LocalLabels, 1)
	if err != nil {
		t.Fatal(err)
	}
	protos := make([]sim.Protocol, n)
	for i := range protos {
		protos[i] = cogcast.New(sim.View(asn, sim.NodeID(i)), true, "m", 1)
	}
	eng, err := sim.NewEngine(asn, protos, 1, opts...)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := eng.RunSlot(); err != nil {
			t.Fatal(err)
		}
	}
	return eng
}

// TestRunSlotAllocFree pins the zero-allocation property of the hot loop:
// a steady-state RunSlot must not allocate at all. A regression here (a
// map rebuilt per slot, a re-boxed message, a fresh outcome slice) shows up
// as a fractional alloc count and fails loudly.
func TestRunSlotAllocFree(t *testing.T) {
	eng := steadyStateEngine(t)
	allocs := testing.AllocsPerRun(100, func() {
		if err := eng.RunSlot(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state RunSlot allocates %.2f objects/slot, want 0", allocs)
	}
}

// TestRunSlotShardedAllocFree extends the zero-allocation pin to the
// sharded scan: once the per-shard accumulators and goroutine bodies are
// built at Reset, a steady-state sharded RunSlot spawns its workers and
// merges their pending actions without a single allocation, at every shard
// count. A regression here (a closure rebuilt per slot, a pend list regrown,
// a channel-based handoff) is exactly the kind of cost that would erase the
// multi-core win WithShards exists for.
func TestRunSlotShardedAllocFree(t *testing.T) {
	for _, shards := range []int{2, 4, 8} {
		eng := steadyStateEngine(t, sim.WithShards(shards))
		if got := eng.Shards(); got != shards {
			t.Fatalf("Shards() = %d, want %d", got, shards)
		}
		allocs := testing.AllocsPerRun(100, func() {
			if err := eng.RunSlot(); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("steady-state RunSlot with %d shards allocates %.2f objects/slot, want 0", shards, allocs)
		}
	}
}

// TestRunSlotSparseAllocFree pins the wake-queue's zero-allocation
// property: once the heap, awake set and listen buckets are pre-sized at
// Reset, a steady-state event-driven slot pops wakes, steps the awake few,
// resolves their channels and re-parks them without a single allocation.
// The workload is the census round-robin from BenchmarkEngineSlotSparse —
// the dormancy-heavy pattern the sparse engine exists for — and the pin
// holds at every requested shard count: sparse execution forces the scan
// serial (Shards() == 1), and the discarded shard machinery must not leak
// per-slot cost back in.
func TestRunSlotSparseAllocFree(t *testing.T) {
	const n, c = 4096, 16
	asn, err := assign.SharedCore(n, c, 4, 48, assign.LocalLabels, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 2, 4, 8} {
		protos := make([]sim.Protocol, n)
		for i := range protos {
			protos[i] = &censusNode{id: i, n: n}
		}
		eng, err := sim.NewEngine(asn, protos, 1, sim.WithSparse(), sim.WithShards(shards))
		if err != nil {
			t.Fatal(err)
		}
		if !eng.Sparse() {
			t.Fatalf("shards=%d: engine not in sparse mode", shards)
		}
		if got := eng.Shards(); got != 1 {
			t.Fatalf("shards=%d: sparse engine reports %d shards, want 1 (forced serial)", shards, got)
		}
		for i := 0; i < 8; i++ { // warm scratch and fill the wake-queue
			if err := eng.RunSlot(); err != nil {
				t.Fatal(err)
			}
		}
		allocs := testing.AllocsPerRun(100, func() {
			if err := eng.RunSlot(); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("steady-state sparse RunSlot (shards=%d requested) allocates %.2f objects/slot, want 0", shards, allocs)
		}
	}
}

// TestRunSlotObservedAllocBound allows the observer path at most one
// allocation per slot: the engine hands the observer its reused outcome
// scratch, so any steady-state cost belongs to the observer itself (the
// metrics collector is itself alloc-free once warm).
func TestRunSlotObservedAllocBound(t *testing.T) {
	eng := steadyStateEngine(t, sim.WithObserver(&metrics.Collector{}))
	allocs := testing.AllocsPerRun(100, func() {
		if err := eng.RunSlot(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1 {
		t.Errorf("observed RunSlot allocates %.2f objects/slot, want <= 1", allocs)
	}
}

// TestArenaTrialAllocBound pins the setup path's reuse contract end to end:
// one warm (builder, arena) pair running complete COGCAST trials — regenerate
// a SharedCore assignment into the builder's backing, reset the engine,
// reinitialize every node, run to completion — must stay within a small
// constant number of allocations per trial (the Result struct and its two
// per-node slices, plus engine-option boxing), independent of slot count and
// network size. Before the flat/reuse rework this figure was in the tens of
// thousands; a regression toward per-trial rebuilding fails loudly.
func TestArenaTrialAllocBound(t *testing.T) {
	var b assign.Builder
	var arena cogcast.Arena
	const n, c, k, total = 64, 8, 2, 24
	trial := 0
	runTrial := func() {
		trial++
		asn, err := b.SharedCore(n, c, k, total, assign.LocalLabels, int64(trial%7))
		if err != nil {
			t.Fatal(err)
		}
		res, err := arena.Run(asn, 0, "m", int64(trial%7), cogcast.RunConfig{UntilAllInformed: true, MaxSlots: 100000})
		if err != nil {
			t.Fatal(err)
		}
		if !res.AllInformed {
			t.Fatal("trial incomplete")
		}
	}
	runTrial() // warm the builder, nodes, and engine scratch
	allocs := testing.AllocsPerRun(20, runTrial)
	if allocs > 8 {
		t.Errorf("warm arena COGCAST trial allocates %.1f objects, want <= 8", allocs)
	}
}

// TestTraceDisabledAllocFree pins the observability layer's zero-cost
// contract: with tracing disabled (no sink attached anywhere), the
// steady-state slot path must remain exactly the zero-allocation loop of
// TestRunSlotAllocFree — adding the trace package cannot tax runs that do
// not use it.
func TestTraceDisabledAllocFree(t *testing.T) {
	eng := steadyStateEngine(t)
	allocs := testing.AllocsPerRun(100, func() {
		if err := eng.RunSlot(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("untraced steady-state RunSlot allocates %.2f objects/slot, want 0", allocs)
	}
}

// TestTraceRingAllocFree pins the flight-recorder mode: recording every
// channel outcome and slot marker into a trace.Ring must not reintroduce
// per-slot allocations (Event is a fixed-size value, the ring storage is
// preallocated).
func TestTraceRingAllocFree(t *testing.T) {
	eng := steadyStateEngine(t, sim.WithObserver(trace.NewRecorder(trace.NewRing(4096))))
	allocs := testing.AllocsPerRun(100, func() {
		if err := eng.RunSlot(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("ring-traced steady-state RunSlot allocates %.2f objects/slot, want 0", allocs)
	}
}

// TestCheckerObservedAllocFree pins the invariant oracle's warm-path cost:
// a steady-state engine with the checker attached must not allocate per
// slot. The checker's scratch (participation stamps, winner tallies) grows
// lazily during warm-up and is then reused; only the violation path — which
// a healthy run never takes — formats errors.
func TestCheckerObservedAllocFree(t *testing.T) {
	const n, c = 256, 16
	asn, err := assign.SharedCore(n, c, 4, 48, assign.LocalLabels, 1)
	if err != nil {
		t.Fatal(err)
	}
	ck := new(invariant.Checker)
	ck.Reset(asn, sim.UniformWinner)
	protos := make([]sim.Protocol, n)
	for i := range protos {
		protos[i] = cogcast.New(sim.View(asn, sim.NodeID(i)), true, "m", 1)
	}
	eng, err := sim.NewEngine(asn, protos, 1, sim.WithObserver(ck))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ { // warm both engine scratch and checker tallies
		if err := eng.RunSlot(); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := eng.RunSlot(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("checked steady-state RunSlot allocates %.2f objects/slot, want 0", allocs)
	}
	if err := ck.Err(); err != nil {
		t.Fatalf("oracle violation on a healthy run: %v", err)
	}
}

// TestCheckerDisabledAllocFree reaffirms the opt-in contract after the
// invariant wiring landed in the protocol runners: with Check off nothing
// is attached to the engine and the slot path stays the pinned
// zero-allocation loop.
func TestCheckerDisabledAllocFree(t *testing.T) {
	eng := steadyStateEngine(t)
	allocs := testing.AllocsPerRun(100, func() {
		if err := eng.RunSlot(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("unchecked steady-state RunSlot allocates %.2f objects/slot, want 0", allocs)
	}
}
