package crn_test

import (
	"errors"
	"testing"

	crn "github.com/cogradio/crn"
)

func mustNetwork(t *testing.T, spec crn.Spec) *crn.Network {
	t.Helper()
	net, err := crn.NewNetwork(spec)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func defaultSpec() crn.Spec {
	return crn.Spec{
		Nodes:           48,
		ChannelsPerNode: 8,
		MinOverlap:      2,
		TotalChannels:   24,
		Topology:        crn.SharedCore,
		Seed:            1,
	}
}

func TestNewNetworkAccessors(t *testing.T) {
	net := mustNetwork(t, defaultSpec())
	if net.Nodes() != 48 || net.ChannelsPerNode() != 8 || net.MinOverlap() != 2 || net.TotalChannels() != 24 {
		t.Errorf("dims = (%d,%d,%d,%d)", net.Nodes(), net.ChannelsPerNode(), net.MinOverlap(), net.TotalChannels())
	}
	if net.Dynamic() {
		t.Error("static network reports dynamic")
	}
	if net.SlotBound(0) < 1 {
		t.Error("SlotBound should be positive")
	}
	// Doubling kappa doubles the bound up to ceiling rounding.
	if a, b := net.SlotBound(1), net.SlotBound(2); b < 2*a-2 || b > 2*a {
		t.Errorf("SlotBound kappa scaling: %d, %d", a, b)
	}
}

func TestNewNetworkEveryTopology(t *testing.T) {
	specs := map[string]crn.Spec{
		"full-overlap": {Nodes: 10, ChannelsPerNode: 4, MinOverlap: 4, Topology: crn.FullOverlap, Seed: 1},
		"partitioned":  {Nodes: 10, ChannelsPerNode: 4, MinOverlap: 2, Topology: crn.Partitioned, Seed: 2},
		"shared-core":  {Nodes: 10, ChannelsPerNode: 6, MinOverlap: 2, TotalChannels: 18, Topology: crn.SharedCore, Seed: 3},
		"random-pool":  {Nodes: 10, ChannelsPerNode: 12, MinOverlap: 2, TotalChannels: 24, Topology: crn.RandomPool, Seed: 4},
		"pairwise":     {Nodes: 4, ChannelsPerNode: 6, MinOverlap: 2, Topology: crn.PairwiseDedicated, Seed: 5},
		"global":       {Nodes: 10, ChannelsPerNode: 4, MinOverlap: 2, Topology: crn.Partitioned, Labels: crn.GlobalLabels, Seed: 6},
		"dynamic":      {Nodes: 10, ChannelsPerNode: 6, MinOverlap: 2, TotalChannels: 18, Topology: crn.SharedCore, Dynamic: true, Seed: 7},
	}
	for name, spec := range specs {
		t.Run(name, func(t *testing.T) {
			net := mustNetwork(t, spec)
			res, err := net.Broadcast(crn.BroadcastOptions{Payload: "x", Seed: 9, RunToCompletion: true, MaxSlots: 100000})
			if err != nil {
				t.Fatal(err)
			}
			if !res.AllInformed {
				t.Fatalf("broadcast incomplete after %d slots", res.Slots)
			}
			if res.TreeHeight < 1 {
				t.Errorf("tree height = %d, want >= 1", res.TreeHeight)
			}
		})
	}
}

func TestNewNetworkValidation(t *testing.T) {
	if _, err := crn.NewNetwork(crn.Spec{Nodes: 4, ChannelsPerNode: 4, MinOverlap: 2}); err == nil {
		t.Error("missing topology accepted")
	}
	if _, err := crn.NewNetwork(crn.Spec{Nodes: 4, ChannelsPerNode: 4, MinOverlap: 2, Topology: crn.Partitioned, Dynamic: true}); err == nil {
		t.Error("dynamic with non-SharedCore topology accepted")
	}
	bad := defaultSpec()
	bad.Dynamic = true
	bad.Labels = crn.GlobalLabels
	if _, err := crn.NewNetwork(bad); err == nil {
		t.Error("dynamic global labels accepted")
	}
	small := defaultSpec()
	small.MinOverlap = 100
	if _, err := crn.NewNetwork(small); err == nil {
		t.Error("k > c accepted")
	}
}

func TestBroadcastTrajectoryAndTree(t *testing.T) {
	net := mustNetwork(t, defaultSpec())
	res, err := net.Broadcast(crn.BroadcastOptions{Source: 5, Payload: 42, Seed: 2, RunToCompletion: true, MaxSlots: 50000, Trajectory: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trajectory) != res.Slots {
		t.Errorf("trajectory length %d != slots %d", len(res.Trajectory), res.Slots)
	}
	if res.Parents[5] != crn.None {
		t.Errorf("source parent = %d, want None", res.Parents[5])
	}
	informed := 0
	for v, p := range res.Parents {
		if p != crn.None {
			informed++
			if res.InformedSlots[v] < 0 {
				t.Errorf("node %d has parent but no informed slot", v)
			}
		}
	}
	if informed != net.Nodes()-1 {
		t.Errorf("%d nodes have parents, want %d", informed, net.Nodes()-1)
	}
}

func TestAggregateSumAndStats(t *testing.T) {
	net := mustNetwork(t, defaultSpec())
	inputs := make([]int64, net.Nodes())
	var want int64
	for i := range inputs {
		inputs[i] = int64(i) - 10
		want += inputs[i]
	}
	res, err := net.Aggregate(inputs, crn.AggregateOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != want {
		t.Errorf("sum = %v, want %d", res.Value, want)
	}
	if res.Phase2Slots != net.Nodes() {
		t.Errorf("phase 2 = %d slots, want n", res.Phase2Slots)
	}

	sres, err := net.Aggregate(inputs, crn.AggregateOptions{Func: "stats", Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	st, ok := sres.Value.(crn.Stats)
	if !ok {
		t.Fatalf("stats value has type %T", sres.Value)
	}
	if st.Count != int64(net.Nodes()) || st.Sum != want || st.Min != -10 || st.Max != int64(net.Nodes())-11 {
		t.Errorf("stats = %+v", st)
	}
	if st.Mean == 0 {
		t.Error("mean not populated")
	}
}

func TestAggregateCollect(t *testing.T) {
	spec := defaultSpec()
	spec.Nodes = 12
	net := mustNetwork(t, spec)
	inputs := make([]int64, 12)
	for i := range inputs {
		inputs[i] = int64(i * i)
	}
	res, err := net.Aggregate(inputs, crn.AggregateOptions{Func: "collect", Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	readings, ok := res.Value.([]crn.Reading)
	if !ok {
		t.Fatalf("collect value has type %T", res.Value)
	}
	if len(readings) != 12 {
		t.Fatalf("collected %d readings, want 12", len(readings))
	}
	for _, r := range readings {
		if inputs[r.Node] != r.Value {
			t.Errorf("reading %+v mismatches input %d", r, inputs[r.Node])
		}
	}
	if res.MaxMessageSize < 2 {
		t.Errorf("collect max message %d, want >= 2", res.MaxMessageSize)
	}
}

func TestAggregateValidation(t *testing.T) {
	net := mustNetwork(t, defaultSpec())
	if _, err := net.Aggregate(make([]int64, 3), crn.AggregateOptions{}); err == nil {
		t.Error("wrong input count accepted")
	}
	if _, err := net.Aggregate(make([]int64, net.Nodes()), crn.AggregateOptions{Func: "median"}); err == nil {
		t.Error("unknown aggregate accepted")
	}
	dspec := defaultSpec()
	dspec.Dynamic = true
	dnet := mustNetwork(t, dspec)
	if _, err := dnet.Aggregate(make([]int64, dnet.Nodes()), crn.AggregateOptions{}); err == nil {
		t.Error("aggregate over dynamic network accepted")
	}
}

func TestBaselinesViaFacade(t *testing.T) {
	spec := crn.Spec{Nodes: 16, ChannelsPerNode: 4, MinOverlap: 2, Topology: crn.Partitioned, Labels: crn.GlobalLabels, Seed: 5}
	net := mustNetwork(t, spec)

	slots, done, err := net.RendezvousBroadcast(0, "m", 6, 500000)
	if err != nil || !done {
		t.Fatalf("rendezvous broadcast: slots=%d done=%v err=%v", slots, done, err)
	}
	inputs := make([]int64, 16)
	aslots, adone, err := net.RendezvousAggregate(0, inputs, 6, 2000000)
	if err != nil || !adone {
		t.Fatalf("rendezvous aggregate: slots=%d done=%v err=%v", aslots, adone, err)
	}
	hslots, hdone, err := net.HoppingTogether(0, "m", 6, 10*net.TotalChannels())
	if err != nil || !hdone {
		t.Fatalf("hopping together: slots=%d done=%v err=%v", hslots, hdone, err)
	}
	if hslots > net.TotalChannels() {
		t.Errorf("hopping-together took %d slots, more than one spectrum pass", hslots)
	}
}

func TestJammedNetwork(t *testing.T) {
	for _, strategy := range []string{"none", "random", "sweep", "block", "split"} {
		net, err := crn.NewJammedNetwork(24, 12, 3, strategy, 7)
		if err != nil {
			t.Fatalf("%s: %v", strategy, err)
		}
		if net.MinOverlap() != 12-2*3 {
			t.Errorf("%s: overlap = %d, want c-2kJam = 6", strategy, net.MinOverlap())
		}
		res, err := net.Broadcast(crn.BroadcastOptions{Payload: "m", Seed: 8, RunToCompletion: true, MaxSlots: 50000})
		if err != nil {
			t.Fatal(err)
		}
		if !res.AllInformed {
			t.Errorf("%s: broadcast incomplete", strategy)
		}
	}
	if _, err := crn.NewJammedNetwork(4, 8, 2, "nuke", 1); err == nil {
		t.Error("unknown strategy accepted")
	}
	if _, err := crn.NewJammedNetwork(4, 8, 4, "random", 1); err == nil {
		t.Error("kJam >= c/2 accepted")
	}
}

func TestAggregateIncompleteSurfaced(t *testing.T) {
	// Starved phase one must surface ErrIncomplete, not a wrong value.
	spec := crn.Spec{Nodes: 64, ChannelsPerNode: 16, MinOverlap: 1, Topology: crn.Partitioned, Seed: 11}
	net := mustNetwork(t, spec)
	sawIncomplete := false
	for seed := int64(0); seed < 6 && !sawIncomplete; seed++ {
		_, err := net.Aggregate(make([]int64, 64), crn.AggregateOptions{Seed: seed, Kappa: 0.05})
		if err == nil {
			continue
		}
		if errors.Is(err, crn.ErrIncomplete) {
			sawIncomplete = true
		} else {
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if !sawIncomplete {
		t.Skip("starved phase one happened to inform everyone on all seeds")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (int, any) {
		net := mustNetwork(t, defaultSpec())
		inputs := make([]int64, net.Nodes())
		for i := range inputs {
			inputs[i] = int64(i)
		}
		res, err := net.Aggregate(inputs, crn.AggregateOptions{Seed: 13})
		if err != nil {
			t.Fatal(err)
		}
		return res.Slots, res.Value
	}
	s1, v1 := run()
	s2, v2 := run()
	if s1 != s2 || v1 != v2 {
		t.Errorf("identical runs diverged: (%d,%v) vs (%d,%v)", s1, v1, s2, v2)
	}
}

func TestAggregateRecoverFaultFreeIdentity(t *testing.T) {
	// Recover with no outages must reproduce the classic run exactly.
	net := mustNetwork(t, defaultSpec())
	inputs := make([]int64, net.Nodes())
	for i := range inputs {
		inputs[i] = int64(i + 1)
	}
	classic, err := net.Aggregate(inputs, crn.AggregateOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := net.Aggregate(inputs, crn.AggregateOptions{Seed: 5, Recover: true})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Value != classic.Value || rec.Slots != classic.Slots {
		t.Errorf("recovered run diverged: (%v, %d slots) vs classic (%v, %d slots)",
			rec.Value, rec.Slots, classic.Value, classic.Slots)
	}
	if rec.Degraded || rec.Stalled || rec.Retries != 0 || rec.Restarts != 0 {
		t.Errorf("fault-free recovered run reports recovery activity: %+v", rec)
	}
	if len(rec.Contributors) != net.Nodes() {
		t.Errorf("contributors = %d, want n = %d", len(rec.Contributors), net.Nodes())
	}
}

func TestAggregateRecoverUnderOutages(t *testing.T) {
	// Injected crash-restart outages: the supervisor must settle every
	// seed without error, and settled runs must be exact or explicitly
	// degraded (value = fold over Contributors) — never silently wrong.
	net := mustNetwork(t, defaultSpec())
	inputs := make([]int64, net.Nodes())
	for i := range inputs {
		inputs[i] = int64(i + 1)
	}
	sawRestart := false
	for seed := int64(1); seed <= 4; seed++ {
		res, err := net.Aggregate(inputs, crn.AggregateOptions{
			Seed: seed, Recover: true, OutageRate: 0.003, Check: true,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Restarts > 0 {
			sawRestart = true
		}
		if res.Stalled {
			if !res.Degraded {
				t.Errorf("seed %d: stalled but not degraded", seed)
			}
			continue
		}
		var want int64
		for _, id := range res.Contributors {
			want += inputs[id]
		}
		if res.Value != want {
			t.Errorf("seed %d: value %v != contributor fold %d", seed, res.Value, want)
		}
		if !res.Degraded && len(res.Contributors) != net.Nodes() {
			t.Errorf("seed %d: non-degraded run with %d contributors", seed, len(res.Contributors))
		}
	}
	if !sawRestart {
		t.Error("no seed exercised a crash-restart cycle; raise the rate")
	}
}
